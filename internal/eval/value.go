// Package eval evaluates terms under models with exact big-number
// arithmetic and full SMT-LIB string/regex semantics. It is the
// semantic ground truth of the system: the reference solver certifies
// every sat answer against it, generators self-check their witness
// models with it, and property tests use it to validate the fusion
// propositions.
//
// SMT-LIB leaves division by zero underspecified (any fixed
// interpretation is conforming). This package — and the reference
// solver, which must agree with it — fixes:
//
//	(/ a 0)   = 0
//	(div a 0) = 0
//	(mod a 0) = a
//
// Integer division and modulo follow the SMT-LIB (Euclidean) semantics:
// the remainder is always non-negative.
package eval

import (
	"fmt"
	"math/big"

	"repro/internal/ast"
)

// Value is an evaluated SMT value.
type Value interface {
	Sort() ast.Sort
	// String renders the value in SMT-LIB syntax.
	String() string
}

// BoolV is a boolean value.
type BoolV bool

// IntV is an integer value.
type IntV struct{ V *big.Int }

// RealV is a rational value.
type RealV struct{ V *big.Rat }

// StrV is a string value.
type StrV string

func (BoolV) Sort() ast.Sort { return ast.SortBool }
func (IntV) Sort() ast.Sort  { return ast.SortInt }
func (RealV) Sort() ast.Sort { return ast.SortReal }
func (StrV) Sort() ast.Sort  { return ast.SortString }

func (v BoolV) String() string {
	if v {
		return "true"
	}
	return "false"
}

func (v IntV) String() string  { return ast.Print(ast.IntBig(v.V)) }
func (v RealV) String() string { return ast.Print(ast.RealBig(v.V)) }
func (v StrV) String() string  { return ast.Print(ast.Str(string(v))) }

// Int returns an integer value.
func Int(v int64) IntV { return IntV{V: big.NewInt(v)} }

// Real returns a rational value.
func Real(num, den int64) RealV { return RealV{V: big.NewRat(num, den)} }

// Equal reports value equality (same sort and same value).
func Equal(a, b Value) bool {
	if a.Sort() != b.Sort() {
		return false
	}
	switch x := a.(type) {
	case BoolV:
		return x == b.(BoolV)
	case IntV:
		return x.V.Cmp(b.(IntV).V) == 0
	case RealV:
		return x.V.Cmp(b.(RealV).V) == 0
	case StrV:
		return x == b.(StrV)
	}
	return false
}

// ToTerm converts a value back into a literal term.
func ToTerm(v Value) ast.Term {
	switch x := v.(type) {
	case BoolV:
		return ast.Bool(bool(x))
	case IntV:
		return ast.IntBig(x.V)
	case RealV:
		return ast.RealBig(x.V)
	case StrV:
		return ast.Str(string(x))
	default:
		panic(fmt.Sprintf("eval: unknown value %T", v))
	}
}

// Model maps free-variable names to values.
type Model map[string]Value

// Clone returns a copy of the model (values are immutable and shared).
func (m Model) Clone() Model {
	out := make(Model, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Union returns the union of two models; overlapping names must agree.
func (m Model) Union(other Model) (Model, error) {
	out := m.Clone()
	for k, v := range other {
		if prev, ok := out[k]; ok && !Equal(prev, v) {
			return nil, fmt.Errorf("eval: models disagree on %s (%s vs %s)", k, prev, v)
		}
		out[k] = v
	}
	return out, nil
}

// DefaultValue returns the sort's designated default (0, 0.0, "", false)
// used to complete partial models.
func DefaultValue(s ast.Sort) Value {
	switch s {
	case ast.SortBool:
		return BoolV(false)
	case ast.SortInt:
		return Int(0)
	case ast.SortReal:
		return Real(0, 1)
	case ast.SortString:
		return StrV("")
	default:
		panic(fmt.Sprintf("eval: no default value for sort %v", s))
	}
}
