package eval

import (
	"errors"
	"fmt"

	"repro/internal/ast"
)

// Sentinel causes. Every error produced by this package is (or wraps)
// a *Error whose Err field is one of these, so callers can branch with
// errors.Is without string matching.
var (
	// ErrQuantifier is returned when a term contains a quantifier:
	// evaluation over unbounded domains is not decidable by
	// enumeration, so callers must treat quantified formulas
	// separately.
	ErrQuantifier = errors.New("eval: cannot evaluate quantified term")
	// ErrUnbound marks a free variable with no model entry.
	ErrUnbound = errors.New("eval: unbound variable")
	// ErrSortMismatch marks a value of the wrong sort reaching an
	// operator or a model entry disagreeing with its variable's sort —
	// only reachable through ill-sorted terms (ast.UncheckedApp) or
	// ill-sorted models, never through checked constructors.
	ErrSortMismatch = errors.New("eval: sort mismatch")
	// ErrUnsupported marks a term or operator this evaluator does not
	// interpret.
	ErrUnsupported = errors.New("eval: unsupported")
)

// Error is the structured evaluation failure. Path addresses the
// offending subterm from the evaluation root in the same arg[i] step
// syntax the analysis diagnostics use ("" means the root itself), and
// Term is that subterm, so a harness report can point at the exact
// position that failed rather than re-searching the formula.
type Error struct {
	Err  error    // sentinel cause (ErrQuantifier, ErrUnbound, ...)
	Path string   // term path from the evaluation root; "" = root
	Term ast.Term // offending subterm
	Msg  string   // detail
}

func (e *Error) Error() string {
	where := ""
	if e.Path != "" {
		where = " at " + e.Path
	}
	return fmt.Sprintf("%v%s: %s", e.Err, where, e.Msg)
}

func (e *Error) Unwrap() error { return e.Err }

func newErr(cause error, t ast.Term, format string, args ...any) *Error {
	return &Error{Err: cause, Term: t, Msg: fmt.Sprintf(format, args...)}
}

// at prepends the path step arg[i] as an error unwinds one application
// level. The *Error is copied, never mutated: a single error value may
// unwind through shared (interned) subterms.
func at(err error, i int) error {
	e, ok := err.(*Error)
	if !ok {
		return err
	}
	step := fmt.Sprintf("arg[%d]", i)
	cp := *e
	if cp.Path == "" {
		cp.Path = step
	} else {
		cp.Path = step + "." + cp.Path
	}
	return &cp
}

// Argument accessors: each checks the already-evaluated argument value
// of an application and reports a structured sort mismatch pointing at
// that argument. They are the only way applyOp and its helpers read
// argument values, so no evaluation path type-asserts unchecked.

func argBool(n *ast.App, args []Value, i int) (bool, error) {
	if b, ok := args[i].(BoolV); ok {
		return bool(b), nil
	}
	return false, at(newErr(ErrSortMismatch, n.Args[i], "%v argument %d has sort %v, want Bool", n.Op, i, args[i].Sort()), i)
}

func argInt(n *ast.App, args []Value, i int) (IntV, error) {
	if v, ok := args[i].(IntV); ok {
		return v, nil
	}
	return IntV{}, at(newErr(ErrSortMismatch, n.Args[i], "%v argument %d has sort %v, want Int", n.Op, i, args[i].Sort()), i)
}

func argReal(n *ast.App, args []Value, i int) (RealV, error) {
	if v, ok := args[i].(RealV); ok {
		return v, nil
	}
	return RealV{}, at(newErr(ErrSortMismatch, n.Args[i], "%v argument %d has sort %v, want Real", n.Op, i, args[i].Sort()), i)
}

func argStr(n *ast.App, args []Value, i int) (string, error) {
	if v, ok := args[i].(StrV); ok {
		return string(v), nil
	}
	return "", at(newErr(ErrSortMismatch, n.Args[i], "%v argument %d has sort %v, want String", n.Op, i, args[i].Sort()), i)
}
