package eval_test

import (
	"errors"
	"testing"

	"repro/internal/eval"
	"repro/internal/smtlib"
)

// FuzzEvalTotal checks the evaluator's totality contract: on any term
// the elaborator accepts, under any model — including models with
// missing bindings and wrong-sort bindings — evaluation returns either
// a value or a structured *eval.Error, and never panics. The salt
// steers the model away from well-formedness so the unbound and
// sort-mismatch branches are exercised, not just the happy path.
func FuzzEvalTotal(f *testing.F) {
	seeds := []string{
		"(set-logic QF_LIA)\n(declare-fun x () Int)\n(assert (> (div x 0) (mod x 2)))\n(check-sat)\n",
		"(set-logic QF_S)\n(declare-fun s () String)\n(assert (str.contains (str.replace s \"a\" \"\") (str.at s (- 1))))\n(check-sat)\n",
		"(set-logic QF_NRA)\n(declare-fun a () Real)\n(assert (= (/ a a) 1.0))\n(check-sat)\n",
		"(set-logic QF_LIA)\n(declare-fun p () Bool)\n(assert (ite p (< 1 2 3) (distinct 1 2 1)))\n(check-sat)\n",
		"(set-logic QF_S)\n(declare-fun s () String)\n(assert (str.in_re s (re.union (re.* (str.to_re \"a\")) (re.range \"a\" \"z\"))))\n(check-sat)\n",
		"(set-logic QF_LRA)\n(declare-fun r () Real)\n(assert (<= (to_real (to_int r)) r))\n(check-sat)\n",
		"(set-logic QF_S)\n(declare-fun s () String)\n(assert (= (str.to_int (str.from_int (str.len s))) (str.indexof s s 0)))\n(check-sat)\n",
	}
	for _, s := range seeds {
		f.Add(s, byte(0))
		f.Add(s, byte(3))
	}
	f.Fuzz(func(t *testing.T, src string, salt byte) {
		sc, err := smtlib.ParseScript(src)
		if err != nil {
			return
		}
		m := eval.Model{}
		for i, d := range sc.Declarations() {
			switch {
			case salt&1 == 1 && i == 0:
				// Leave the first variable unbound: the ErrUnbound path.
			case salt&2 == 2:
				// Bind a deliberately wrong-sorted value: the
				// ErrSortMismatch path (Bool is wrong for every
				// non-Bool variable, String for every Bool one).
				if d.Sort.String() == "Bool" {
					m[d.Name] = eval.StrV("oops")
				} else {
					m[d.Name] = eval.BoolV(true)
				}
			default:
				m[d.Name] = eval.DefaultValue(d.Sort)
			}
		}
		for _, a := range sc.Asserts() {
			v, err := eval.Term(a, m)
			if err != nil {
				var ee *eval.Error
				if !errors.As(err, &ee) {
					t.Fatalf("unstructured evaluation error %T: %v", err, err)
				}
				continue
			}
			if v == nil {
				t.Fatal("evaluation returned neither value nor error")
			}
		}
	})
}
