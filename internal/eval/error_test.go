package eval

import (
	"errors"
	"testing"

	"repro/internal/ast"
)

// TestStructuredErrors drives every error branch of the evaluator and
// checks three properties per case: the sentinel cause matches under
// errors.Is, the reported path addresses the offending subterm, and the
// *Error carries the subterm itself. Ill-sorted applications are forged
// with ast.UncheckedApp — the checked constructors reject them — and
// ill-sorted models are built directly.
func TestStructuredErrors(t *testing.T) {
	x := ast.NewVar("x", ast.SortInt)
	b := ast.NewVar("b", ast.SortBool)
	s := ast.NewVar("s", ast.SortString)
	r := ast.NewVar("r", ast.SortReal)
	okModel := Model{
		"x": Int(1), "b": BoolV(true), "s": StrV("ab"), "r": Real(1, 2),
	}
	boolAsInt := ast.UncheckedApp(ast.OpAdd, ast.SortInt, b, x) // (+ b x) forged

	cases := []struct {
		name     string
		term     ast.Term
		model    Model
		sentinel error
		path     string
	}{
		{"unbound variable", ast.Gt(x, ast.Int(0)), Model{}, ErrUnbound, "arg[0]"},
		{"model sort mismatch", x, Model{"x": BoolV(true)}, ErrSortMismatch, ""},
		{"quantifier", ast.MustQuant(true, []ast.SortedVar{{Name: "q", Sort: ast.SortInt}}, ast.Bool(true)), okModel, ErrQuantifier, ""},
		{"bool wanted by Not", ast.UncheckedApp(ast.OpNot, ast.SortBool, x), okModel, ErrSortMismatch, "arg[0]"},
		{"bool wanted by Xor", ast.UncheckedApp(ast.OpXor, ast.SortBool, b, x), okModel, ErrSortMismatch, "arg[1]"},
		{"arith on Bool", ast.UncheckedApp(ast.OpAdd, ast.SortInt, b, b), okModel, ErrSortMismatch, "arg[0]"},
		{"int arith mixed with Real", ast.UncheckedApp(ast.OpAdd, ast.SortInt, x, r), okModel, ErrSortMismatch, "arg[1]"},
		{"real arith mixed with Str", ast.UncheckedApp(ast.OpMul, ast.SortReal, r, s), okModel, ErrSortMismatch, "arg[1]"},
		{"compare on Strings", ast.UncheckedApp(ast.OpLt, ast.SortBool, s, s), okModel, ErrSortMismatch, "arg[0]"},
		{"compare mixed sorts", ast.UncheckedApp(ast.OpLe, ast.SortBool, x, r), okModel, ErrSortMismatch, "arg[1]"},
		{"to_real of Real", ast.UncheckedApp(ast.OpToReal, ast.SortReal, r), okModel, ErrSortMismatch, "arg[0]"},
		{"to_int of Int", ast.UncheckedApp(ast.OpToInt, ast.SortInt, x), okModel, ErrSortMismatch, "arg[0]"},
		{"is_int of Int", ast.UncheckedApp(ast.OpIsInt, ast.SortBool, x), okModel, ErrSortMismatch, "arg[0]"},
		{"string op on Int", ast.UncheckedApp(ast.OpStrLen, ast.SortInt, x), okModel, ErrSortMismatch, "arg[0]"},
		{"str.at with Str index", ast.UncheckedApp(ast.OpStrAt, ast.SortString, s, s), okModel, ErrSortMismatch, "arg[1]"},
		{"str.in_re non-string subject", ast.UncheckedApp(ast.OpStrInRe, ast.SortBool, x, ast.MustApp(ast.OpReAllChar)), okModel, ErrSortMismatch, "arg[0]"},
		{"str.to_re of Int", ast.MustApp(ast.OpStrInRe, s, ast.UncheckedApp(ast.OpStrToRe, ast.SortRegLan, x)), okModel, ErrSortMismatch, "arg[1].arg[0]"},
		{"re.union non-RegLan arg", ast.MustApp(ast.OpStrInRe, s, ast.UncheckedApp(ast.OpReUnion, ast.SortRegLan, s)), okModel, ErrSortMismatch, "arg[1].arg[0]"},
		{"regex unsupported op", ast.MustApp(ast.OpStrInRe, s, ast.UncheckedApp(ast.OpAdd, ast.SortRegLan)), okModel, ErrUnsupported, "arg[1]"},
		{"non-application RegLan term", ast.MustApp(ast.OpStrInRe, s, ast.NewVar("L", ast.SortRegLan)), okModel, ErrUnsupported, "arg[1]"},
		{"nested path through And", ast.And(b, ast.Gt(boolAsInt, ast.Int(0))), okModel, ErrSortMismatch, "arg[1].arg[0].arg[0]"},
		{"nested path through Ite branch", ast.Ite(b, boolAsInt, x), okModel, ErrSortMismatch, "arg[1].arg[0]"},
		{"implies final arg", ast.MustApp(ast.OpImplies, b, ast.Gt(ast.NewVar("missing", ast.SortInt), x)), okModel, ErrUnbound, "arg[1].arg[0]"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Term(tc.term, tc.model)
			if err == nil {
				t.Fatal("no error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("cause = %v, want %v", err, tc.sentinel)
			}
			var ee *Error
			if !errors.As(err, &ee) {
				t.Fatalf("error %T is not a *eval.Error", err)
			}
			if ee.Path != tc.path {
				t.Errorf("path = %q, want %q (err: %v)", ee.Path, tc.path, err)
			}
			if ee.Term == nil {
				t.Error("error carries no offending term")
			}
		})
	}
}

// TestBoolSortError pins the Bool() wrapper's own mismatch branch: a
// well-sorted non-boolean term is a caller error, reported at the root.
func TestBoolSortError(t *testing.T) {
	_, err := Bool(ast.Int(3), Model{})
	if !errors.Is(err, ErrSortMismatch) {
		t.Fatalf("Bool on Int: %v, want sort mismatch", err)
	}
	var ee *Error
	if !errors.As(err, &ee) || ee.Path != "" {
		t.Errorf("Bool mismatch not at root: %+v", err)
	}
}

// TestErrorPathNotShared checks the copy-on-unwind contract of path
// construction: evaluating the same failing (interned) subterm from two
// positions must report two distinct paths.
func TestErrorPathNotShared(t *testing.T) {
	bad := ast.Gt(ast.NewVar("nope", ast.SortInt), ast.Int(0))
	tt := ast.And(ast.Bool(true), bad, bad)
	_, err := Term(tt, Model{})
	var ee *Error
	if !errors.As(err, &ee) {
		t.Fatal("no structured error")
	}
	if ee.Path != "arg[1].arg[0]" {
		t.Errorf("first failing position = %q, want arg[1].arg[0]", ee.Path)
	}
	// The same leaf from the other position.
	_, err2 := Term(ast.Or(ast.Bool(false), ast.Not(bad)), Model{})
	var ee2 *Error
	if !errors.As(err2, &ee2) {
		t.Fatal("no structured error")
	}
	if ee2.Path != "arg[1].arg[0].arg[0]" {
		t.Errorf("second position = %q, want arg[1].arg[0].arg[0]", ee2.Path)
	}
}
