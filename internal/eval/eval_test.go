package eval

import (
	"errors"
	"math/big"
	"testing"

	"repro/internal/ast"
	"repro/internal/smtlib"
)

// evalStr parses src as a term over decls and evaluates it under m.
func evalStr(t *testing.T, src string, decls map[string]ast.Sort, m Model) Value {
	t.Helper()
	term, err := smtlib.ParseTerm(src, decls)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Term(term, m)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func wantBool(t *testing.T, src string, decls map[string]ast.Sort, m Model, want bool) {
	t.Helper()
	v := evalStr(t, src, decls, m)
	if b, ok := v.(BoolV); !ok || bool(b) != want {
		t.Errorf("eval(%q) = %v, want %v", src, v, want)
	}
}

func wantInt(t *testing.T, src string, decls map[string]ast.Sort, m Model, want int64) {
	t.Helper()
	v := evalStr(t, src, decls, m)
	if iv, ok := v.(IntV); !ok || iv.V.Cmp(big.NewInt(want)) != 0 {
		t.Errorf("eval(%q) = %v, want %d", src, v, want)
	}
}

func wantStr(t *testing.T, src string, decls map[string]ast.Sort, m Model, want string) {
	t.Helper()
	v := evalStr(t, src, decls, m)
	if sv, ok := v.(StrV); !ok || string(sv) != want {
		t.Errorf("eval(%q) = %v, want %q", src, v, want)
	}
}

var noDecls = map[string]ast.Sort{}

func TestBooleanOps(t *testing.T) {
	wantBool(t, "(and true true false)", noDecls, nil, false)
	wantBool(t, "(or false false true)", noDecls, nil, true)
	wantBool(t, "(xor true true true)", noDecls, nil, true)
	wantBool(t, "(=> false true)", noDecls, nil, true)
	wantBool(t, "(=> true false)", noDecls, nil, false)
	wantBool(t, "(=> true true false)", noDecls, nil, false)
	wantBool(t, "(=> false true false)", noDecls, nil, true)
	wantBool(t, "(not false)", noDecls, nil, true)
	wantBool(t, "(distinct 1 2 3)", noDecls, nil, true)
	wantBool(t, "(distinct 1 2 1)", noDecls, nil, false)
	wantBool(t, "(ite true true false)", noDecls, nil, true)
}

func TestShortCircuit(t *testing.T) {
	// x is unbound; short-circuiting must not evaluate it.
	decls := map[string]ast.Sort{"x": ast.SortInt}
	wantBool(t, "(and false (= x 1))", decls, Model{}, false)
	wantBool(t, "(or true (= x 1))", decls, Model{}, true)
	wantBool(t, "(=> false (= x 1))", decls, Model{}, true)
	wantBool(t, "(ite false (= x 1) true)", decls, Model{}, true)
}

func TestIntArith(t *testing.T) {
	wantInt(t, "(+ 1 2 3)", noDecls, nil, 6)
	wantInt(t, "(- 10 3 2)", noDecls, nil, 5)
	wantInt(t, "(- 7)", noDecls, nil, -7)
	wantInt(t, "(* 2 3 4)", noDecls, nil, 24)
	wantInt(t, "(abs (- 5))", noDecls, nil, 5)
	wantBool(t, "(< 1 2 3)", noDecls, nil, true)
	wantBool(t, "(< 1 3 2)", noDecls, nil, false)
	wantBool(t, "(<= 2 2)", noDecls, nil, true)
	wantBool(t, "(> 3 2 1)", noDecls, nil, true)
	wantBool(t, "(>= 3 3 1)", noDecls, nil, true)
}

func TestEuclideanDivMod(t *testing.T) {
	// SMT-LIB div/mod: remainder non-negative.
	cases := []struct{ m, n, q, r int64 }{
		{7, 2, 3, 1},
		{-7, 2, -4, 1},
		{7, -2, -3, 1},
		{-7, -2, 4, 1},
		{6, 3, 2, 0},
		{-6, 3, -2, 0},
	}
	for _, c := range cases {
		q := euclideanDiv(big.NewInt(c.m), big.NewInt(c.n))
		r := euclideanMod(big.NewInt(c.m), big.NewInt(c.n))
		if q.Int64() != c.q || r.Int64() != c.r {
			t.Errorf("div/mod(%d,%d) = %v,%v want %d,%d", c.m, c.n, q, r, c.q, c.r)
		}
		// Defining identity: m = n*q + r, 0 <= r < |n|.
		check := c.n*q.Int64() + r.Int64()
		if check != c.m {
			t.Errorf("identity broken for (%d,%d)", c.m, c.n)
		}
	}
}

func TestDivisionByZeroInterpretation(t *testing.T) {
	wantInt(t, "(div 5 0)", noDecls, nil, 0)
	wantInt(t, "(mod 5 0)", noDecls, nil, 5)
	v := evalStr(t, "(/ 5.0 0.0)", noDecls, nil)
	if rv := v.(RealV); rv.V.Sign() != 0 {
		t.Errorf("(/ 5.0 0.0) = %v want 0", rv)
	}
}

func TestRealArith(t *testing.T) {
	v := evalStr(t, "(+ 0.5 0.25)", noDecls, nil)
	if rv := v.(RealV); rv.V.Cmp(big.NewRat(3, 4)) != 0 {
		t.Errorf("got %v", rv)
	}
	v = evalStr(t, "(/ 1.0 3.0)", noDecls, nil)
	if rv := v.(RealV); rv.V.Cmp(big.NewRat(1, 3)) != 0 {
		t.Errorf("got %v", rv)
	}
	wantBool(t, "(< 0.333 (/ 1.0 3.0) 0.334)", noDecls, nil, true)
	wantInt(t, "(to_int 2.7)", noDecls, nil, 2)
	wantInt(t, "(to_int (- 2.7))", noDecls, nil, -3)
	wantBool(t, "(is_int 2.0)", noDecls, nil, true)
	wantBool(t, "(is_int 2.5)", noDecls, nil, false)
	v = evalStr(t, "(to_real 3)", noDecls, nil)
	if rv := v.(RealV); rv.V.Cmp(big.NewRat(3, 1)) != 0 {
		t.Errorf("to_real: %v", rv)
	}
}

func TestStringOps(t *testing.T) {
	wantStr(t, `(str.++ "foo" "bar")`, noDecls, nil, "foobar")
	wantInt(t, `(str.len "hello")`, noDecls, nil, 5)
	wantStr(t, `(str.at "abc" 1)`, noDecls, nil, "b")
	wantStr(t, `(str.at "abc" 3)`, noDecls, nil, "")
	wantStr(t, `(str.at "abc" (- 1))`, noDecls, nil, "")
	wantStr(t, `(str.substr "abcdef" 1 3)`, noDecls, nil, "bcd")
	wantStr(t, `(str.substr "abcdef" 4 10)`, noDecls, nil, "ef")
	wantStr(t, `(str.substr "abcdef" 9 2)`, noDecls, nil, "")
	wantStr(t, `(str.substr "abcdef" 1 0)`, noDecls, nil, "")
	wantInt(t, `(str.indexof "abcabc" "bc" 0)`, noDecls, nil, 1)
	wantInt(t, `(str.indexof "abcabc" "bc" 2)`, noDecls, nil, 4)
	wantInt(t, `(str.indexof "abc" "x" 0)`, noDecls, nil, -1)
	wantInt(t, `(str.indexof "" "" 0)`, noDecls, nil, 0)
	wantStr(t, `(str.replace "foobar" "foo" "baz")`, noDecls, nil, "bazbar")
	wantStr(t, `(str.replace "aaa" "a" "b")`, noDecls, nil, "baa")
	wantStr(t, `(str.replace "abc" "x" "y")`, noDecls, nil, "abc")
	// SMT-LIB: replacing "" prepends.
	wantStr(t, `(str.replace "abc" "" "Z")`, noDecls, nil, "Zabc")
	wantStr(t, `(str.replace_all "aaa" "a" "b")`, noDecls, nil, "bbb")
	wantBool(t, `(str.prefixof "ab" "abc")`, noDecls, nil, true)
	wantBool(t, `(str.prefixof "bc" "abc")`, noDecls, nil, false)
	wantBool(t, `(str.suffixof "bc" "abc")`, noDecls, nil, true)
	wantBool(t, `(str.contains "abc" "b")`, noDecls, nil, true)
	wantBool(t, `(str.contains "b" "abc")`, noDecls, nil, false)
	wantBool(t, `(str.< "a" "b")`, noDecls, nil, true)
	wantBool(t, `(str.<= "a" "a")`, noDecls, nil, true)
}

func TestStrIntConversions(t *testing.T) {
	wantInt(t, `(str.to_int "42")`, noDecls, nil, 42)
	wantInt(t, `(str.to_int "007")`, noDecls, nil, 7)
	// Paper bug 13b root cause: str.to_int of the empty string is -1.
	wantInt(t, `(str.to_int "")`, noDecls, nil, -1)
	wantInt(t, `(str.to_int "-5")`, noDecls, nil, -1)
	wantInt(t, `(str.to_int "1a")`, noDecls, nil, -1)
	wantStr(t, `(str.from_int 42)`, noDecls, nil, "42")
	wantStr(t, `(str.from_int (- 3))`, noDecls, nil, "")
	wantStr(t, `(str.from_int 0)`, noDecls, nil, "0")
}

func TestRegexMembership(t *testing.T) {
	decls := map[string]ast.Sort{"c": ast.SortString}
	m := Model{"c": StrV("aaaa")}
	wantBool(t, `(str.in_re c (re.* (str.to_re "aa")))`, decls, m, true)
	m["c"] = StrV("aaa")
	wantBool(t, `(str.in_re c (re.* (str.to_re "aa")))`, decls, m, false)
	// Regex with a variable inside str.to_re.
	m2 := Model{"c": StrV("xyxy")}
	wantBool(t, `(str.in_re (str.++ c "!") (re.++ (re.* (str.to_re c)) (str.to_re "!")))`, decls, m2, true)
	wantBool(t, `(str.in_re "q" re.allchar)`, noDecls, nil, true)
	wantBool(t, `(str.in_re "qq" re.allchar)`, noDecls, nil, false)
	wantBool(t, `(str.in_re "anything" re.all)`, noDecls, nil, true)
	wantBool(t, `(str.in_re "" re.none)`, noDecls, nil, false)
	wantBool(t, `(str.in_re "m" (re.range "a" "z"))`, noDecls, nil, true)
}

func TestVariablesAndErrors(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt}
	wantInt(t, "(+ x 1)", decls, Model{"x": Int(41)}, 42)

	term, _ := smtlib.ParseTerm("(+ x 1)", decls)
	if _, err := Term(term, Model{}); !errors.Is(err, ErrUnbound) {
		t.Errorf("unbound variable error missing, got %v", err)
	}
	if _, err := Term(term, Model{"x": StrV("no")}); err == nil {
		t.Error("sort-mismatched model value should error")
	}

	q, _ := smtlib.ParseTerm("(exists ((h Int)) (> h x))", decls)
	if _, err := Term(q, Model{"x": Int(0)}); !errors.Is(err, ErrQuantifier) {
		t.Errorf("quantifier error missing, got %v", err)
	}
}

func TestModelHelpers(t *testing.T) {
	m1 := Model{"x": Int(1)}
	m2 := Model{"y": StrV("s")}
	u, err := m1.Union(m2)
	if err != nil || len(u) != 2 {
		t.Fatalf("union: %v %v", u, err)
	}
	m3 := Model{"x": Int(2)}
	if _, err := m1.Union(m3); err == nil {
		t.Error("conflicting union should fail")
	}
	m4 := Model{"x": Int(1)}
	if _, err := m1.Union(m4); err != nil {
		t.Errorf("agreeing union should succeed: %v", err)
	}
	if !Equal(DefaultValue(ast.SortInt), Int(0)) {
		t.Error("default Int should be 0")
	}
	if !Equal(DefaultValue(ast.SortString), StrV("")) {
		t.Error("default String should be empty")
	}
}

func TestValueToTermRoundTrip(t *testing.T) {
	vals := []Value{BoolV(true), Int(-7), Real(3, 4), StrV(`a"b`)}
	for _, v := range vals {
		term := ToTerm(v)
		back, err := Term(term, nil)
		if err != nil {
			t.Fatalf("eval(ToTerm(%v)): %v", v, err)
		}
		if !Equal(v, back) {
			t.Errorf("round trip: %v != %v", v, back)
		}
	}
}

func TestPaperFigure13cDivisionSemantics(t *testing.T) {
	// The constraint pattern from the paper's Figure 13c: with c = 0,
	// (/ a c) is the fixed zero interpretation, so (>= (/ a c) f) is
	// (>= 0 f).
	decls := map[string]ast.Sort{
		"a": ast.SortReal, "c": ast.SortReal, "f": ast.SortReal,
	}
	m := Model{"a": Real(1, 1), "c": Real(0, 1), "f": Real(2, 1)}
	wantBool(t, "(>= (/ a c) f)", decls, m, false)
	m["f"] = Real(-1, 1)
	wantBool(t, "(>= (/ a c) f)", decls, m, true)
}
