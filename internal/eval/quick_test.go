package eval

import (
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/ast"
)

// Property: the SMT-LIB division identity m = n·(div m n) + (mod m n)
// with 0 ≤ mod < |n| holds for all integers with n ≠ 0.
func TestQuickEuclideanIdentity(t *testing.T) {
	f := func(m, n int64) bool {
		if n == 0 {
			return true
		}
		bm, bn := big.NewInt(m), big.NewInt(n)
		q := euclideanDiv(bm, bn)
		r := euclideanMod(bm, bn)
		if r.Sign() < 0 {
			return false
		}
		absN := new(big.Int).Abs(bn)
		if r.Cmp(absN) >= 0 {
			return false
		}
		check := new(big.Int).Mul(bn, q)
		check.Add(check, r)
		return check.Cmp(bm) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: str.to_int inverts str.from_int on non-negative integers.
func TestQuickStrIntInverse(t *testing.T) {
	f := func(n int64) bool {
		if n < 0 {
			n = -n
		}
		s := StrFromInt(big.NewInt(n))
		return StrToInt(s).Int64() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string term printing and evaluation agree — a StrLit's
// printed form re-evaluates to the same value (escaping round trip at
// the semantic level).
func TestQuickStringLiteralRoundTrip(t *testing.T) {
	f := func(s string) bool {
		v, err := Term(ast.Str(s), nil)
		if err != nil {
			return false
		}
		return string(v.(StrV)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concatenation length homomorphism — len(a ++ b) evaluates
// to len(a) + len(b) for arbitrary strings.
func TestQuickConcatLength(t *testing.T) {
	f := func(a, b string) bool {
		cc := ast.MustApp(ast.OpStrConcat, ast.Str(a), ast.Str(b))
		ln := ast.MustApp(ast.OpStrLen, cc)
		v, err := Term(ln, nil)
		if err != nil {
			return false
		}
		return v.(IntV).V.Int64() == int64(len(a)+len(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: substr is a prefix-suffix decomposition — for any split
// point, substr(s,0,i) ++ substr(s,i,len-i) == s.
func TestQuickSubstrSplit(t *testing.T) {
	f := func(s string, iRaw uint8) bool {
		if len(s) == 0 {
			return true
		}
		i := int64(iRaw) % int64(len(s))
		left := strSubstr(s, big.NewInt(0), big.NewInt(i))
		right := strSubstr(s, big.NewInt(i), big.NewInt(int64(len(s))-i))
		return left+right == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: model Union is commutative on disjoint models.
func TestQuickModelUnion(t *testing.T) {
	f := func(a, b int64, s string) bool {
		m1 := Model{"x": Int(a)}
		m2 := Model{"y": Int(b), "s": StrV(s)}
		u1, err1 := m1.Union(m2)
		u2, err2 := m2.Union(m1)
		if err1 != nil || err2 != nil {
			return false
		}
		return Equal(u1["x"], u2["x"]) && Equal(u1["y"], u2["y"]) && Equal(u1["s"], u2["s"])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
