package backend

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bugdb"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

// fakesolverBin is the path of the fixture binary, built once by
// TestMain — never checked in.
var fakesolverBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fakesolver")
	if err != nil {
		panic(err)
	}
	fakesolverBin = filepath.Join(dir, "fakesolver")
	out, err := exec.Command("go", "build", "-o", fakesolverBin, "./fakesolver").CombinedOutput()
	if err != nil {
		panic("building fakesolver: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func testScript(t *testing.T) *smtlib.Script {
	t.Helper()
	sc, err := smtlib.ParseScript(`
(set-logic QF_LIA)
(declare-fun x () Int)
(assert (> x 0))
(check-sat)
`)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// fake builds a ProcessBackend over the fixture with fast test timings.
func fake(t *testing.T, timeout time.Duration, retries int, args ...string) *ProcessBackend {
	t.Helper()
	return NewProcess(ProcessConfig{
		Name:    "fake",
		Path:    fakesolverBin,
		Args:    args,
		Timeout: timeout,
		Retries: retries,
		Backoff: time.Millisecond,
		Sleep:   func(time.Duration) {},
	})
}

// TestProcessVerdicts checks the happy path, including output decorated
// with everything the normalizer must tolerate.
func TestProcessVerdicts(t *testing.T) {
	sc := testScript(t)
	for _, tc := range []struct {
		mode string
		want Verdict
	}{{"sat", Sat}, {"unsat", Unsat}, {"unknown", Unknown}} {
		for _, decorate := range []bool{false, true} {
			args := []string{"-mode", tc.mode}
			if decorate {
				args = append(args, "-decorate")
			}
			out := fake(t, 5*time.Second, 0, args...).Check(sc)
			if out.Verdict != tc.want {
				t.Errorf("mode=%s decorate=%v: verdict %v, want %v (raw %q, stderr %q)",
					tc.mode, decorate, out.Verdict, tc.want, out.Raw, out.Stderr)
			}
			if out.ExitCode != 0 || out.Retries != 0 {
				t.Errorf("mode=%s decorate=%v: exit=%d retries=%d, want 0/0",
					tc.mode, decorate, out.ExitCode, out.Retries)
			}
		}
	}
}

// TestProcessTimeoutKillsAndReaps pins the hang contract: the deadline
// fires, the process group is killed, the child is reaped before Check
// returns, and the classification is Timeout — never a hang.
func TestProcessTimeoutKillsAndReaps(t *testing.T) {
	out := fake(t, 150*time.Millisecond, 0, "-mode", "hang").Check(testScript(t))
	if out.Verdict != Timeout {
		t.Fatalf("verdict %v, want timeout (%+v)", out.Verdict, out)
	}
	if out.Pid == 0 {
		t.Fatal("no pid recorded")
	}
	// Reap check: the child must be gone — not a zombie, not running.
	// After Wait reaps it, signalling the pid reports ESRCH (the pid is
	// either free or recycled by an unrelated process we cannot signal).
	deadline := time.Now().Add(2 * time.Second)
	for {
		err := syscall.Kill(out.Pid, 0)
		if err == syscall.ESRCH {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("child %d still exists after timeout kill (err=%v)", out.Pid, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestProcessCrashCapture checks that a nonzero exit is classified as a
// crash with its exit status and stderr captured.
func TestProcessCrashCapture(t *testing.T) {
	out := fake(t, 5*time.Second, 0, "-mode", "crash", "-exit", "139", "-stderr", "boom: assertion violated").Check(testScript(t))
	if out.Verdict != Crash {
		t.Fatalf("verdict %v, want crash (%+v)", out.Verdict, out)
	}
	if out.ExitCode != 139 {
		t.Errorf("exit code %d, want 139", out.ExitCode)
	}
	if !strings.Contains(out.Stderr, "boom: assertion violated") {
		t.Errorf("stderr not captured: %q", out.Stderr)
	}
	if !strings.Contains(out.Reason, "exit status 139") {
		t.Errorf("reason %q does not name the exit status", out.Reason)
	}
}

// TestProcessSignalDeath checks classification of a child dying on a
// signal of its own (not our deadline kill).
func TestProcessSignalDeath(t *testing.T) {
	out := fake(t, 5*time.Second, 0, "-mode", "sigkill").Check(testScript(t))
	if out.Verdict != Crash {
		t.Fatalf("verdict %v, want crash (%+v)", out.Verdict, out)
	}
	if out.ExitCode != -1 {
		t.Errorf("exit code %d, want -1 for signal death", out.ExitCode)
	}
	if !strings.Contains(out.Reason, "signal") {
		t.Errorf("reason %q does not mention the signal", out.Reason)
	}
}

// TestProcessGarbledAndTruncated checks that outputs with no verdict
// token classify as garbled, preserving a preview for diagnosis.
func TestProcessGarbledAndTruncated(t *testing.T) {
	for _, mode := range []string{"garble", "truncate"} {
		out := fake(t, 5*time.Second, 0, "-mode", mode).Check(testScript(t))
		if out.Verdict != Garbled {
			t.Errorf("mode=%s: verdict %v, want garbled (%+v)", mode, out.Verdict, out)
		}
		if out.Raw == "" {
			t.Errorf("mode=%s: no raw preview captured", mode)
		}
	}
}

// TestProcessSlowDrip checks both sides of the drip deadline: byte-at-
// a-time output that completes inside the deadline parses normally,
// and a drip cut off by the deadline classifies as timeout with the
// partial bytes preserved.
func TestProcessSlowDrip(t *testing.T) {
	sc := testScript(t)
	out := fake(t, 5*time.Second, 0, "-mode", "drip", "-drip-ms", "5").Check(sc)
	if out.Verdict != Unsat {
		t.Errorf("fast drip: verdict %v, want unsat (%+v)", out.Verdict, out)
	}
	out = fake(t, 200*time.Millisecond, 0, "-mode", "drip", "-drip-ms", "150").Check(sc)
	if out.Verdict != Timeout {
		t.Errorf("slow drip: verdict %v, want timeout (%+v)", out.Verdict, out)
	}
	if out.Raw == "" {
		t.Error("slow drip: partial output not preserved in Raw")
	}
}

// TestProcessEmptyOutputRetriesThenGarbled checks the transient-failure
// path: persistent empty output consumes the full retry budget and then
// classifies as garbled.
func TestProcessEmptyOutputRetriesThenGarbled(t *testing.T) {
	out := fake(t, 5*time.Second, 2, "-mode", "silent").Check(testScript(t))
	if out.Verdict != Garbled {
		t.Fatalf("verdict %v, want garbled (%+v)", out.Verdict, out)
	}
	if out.Retries != 2 {
		t.Errorf("retries %d, want 2", out.Retries)
	}
	if out.Reason != "empty output" {
		t.Errorf("reason %q, want \"empty output\"", out.Reason)
	}
}

// TestProcessFlakeRetrySucceeds checks that a transient flake (empty
// output, nonzero exit for the first N invocations) is healed by the
// retry loop: the final classification is the recovered verdict with
// the consumed retries counted.
func TestProcessFlakeRetrySucceeds(t *testing.T) {
	state := filepath.Join(t.TempDir(), "count")
	b := fake(t, 5*time.Second, 3, "-mode", "flake", "-failures", "2", "-then", "unsat", "-state", state)
	out := b.Check(testScript(t))
	if out.Verdict != Unsat {
		t.Fatalf("verdict %v, want unsat after retries (%+v)", out.Verdict, out)
	}
	if out.Retries != 2 {
		t.Errorf("retries %d, want 2", out.Retries)
	}
	if data, err := os.ReadFile(state); err != nil || string(data) != "3" {
		t.Errorf("state file = %q (err %v), want 3 invocations", data, err)
	}
}

// TestProcessSpawnErrorRetries checks that a missing binary is treated
// as a transient spawn failure, retried, then classified as a crash
// naming the spawn error.
func TestProcessSpawnErrorRetries(t *testing.T) {
	b := NewProcess(ProcessConfig{
		Name: "missing", Path: filepath.Join(t.TempDir(), "no-such-solver"),
		Timeout: time.Second, Retries: 2, Backoff: time.Millisecond,
		Sleep: func(time.Duration) {},
	})
	out := b.Check(testScript(t))
	if out.Verdict != Crash {
		t.Fatalf("verdict %v, want crash (%+v)", out.Verdict, out)
	}
	if out.Retries != 2 {
		t.Errorf("retries %d, want 2", out.Retries)
	}
	if !strings.Contains(out.Reason, "spawn") {
		t.Errorf("reason %q does not name the spawn failure", out.Reason)
	}
}

// TestBreakerQuarantines checks the circuit breaker: K consecutive
// hard failures open it, further checks are skipped with Quarantined,
// and the shared Health reports the state.
func TestBreakerQuarantines(t *testing.T) {
	spec := ProcessSpec(ProcessConfig{
		Name: "crashy", Path: fakesolverBin, Args: []string{"-mode", "crash"},
		Timeout: 5 * time.Second, Retries: -1, BreakerThreshold: 3,
		Backoff: time.Millisecond, Sleep: func(time.Duration) {},
	})
	b, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	sc := testScript(t)
	for i := 0; i < 3; i++ {
		if out := b.Check(sc); out.Verdict != Crash {
			t.Fatalf("check %d: verdict %v, want crash", i, out.Verdict)
		}
	}
	if !spec.Health.Quarantined() {
		t.Fatal("breaker not open after 3 consecutive crashes")
	}
	out := b.Check(sc)
	if out.Verdict != Quarantined {
		t.Fatalf("verdict %v, want quarantined after breaker opened", out.Verdict)
	}
	// A second instance from the same spec shares the breaker.
	b2, err := spec.New()
	if err != nil {
		t.Fatal(err)
	}
	if out := b2.Check(sc); out.Verdict != Quarantined {
		t.Fatalf("sibling instance verdict %v, want quarantined (shared Health)", out.Verdict)
	}
}

// TestBreakerResetsOnSuccess checks that a parsed verdict resets the
// failure streak: alternating failures never reach the threshold.
func TestBreakerResetsOnSuccess(t *testing.T) {
	h := NewHealth(2)
	for i := 0; i < 5; i++ {
		h.Record(Crash)
		h.Record(Unsat)
	}
	if h.Quarantined() {
		t.Fatal("alternating crash/unsat opened the breaker")
	}
	h.Record(Timeout)
	h.Record(Garbled)
	if !h.Quarantined() {
		t.Fatal("two consecutive hard failures did not open the breaker")
	}
}

// TestSimBackendMapsVerdictsAndFaults checks the hermetic adapter: the
// reference mapping of solver results, crash defects surfacing as
// Crash, and non-protocol panics as Fault (our bug, not the SUT's).
func TestSimBackendMapsVerdictsAndFaults(t *testing.T) {
	sc := testScript(t)
	clean := NewSim("ref", solver.New(solver.Config{}))
	if out := clean.Check(sc); out.Verdict != Sat {
		t.Fatalf("reference solver verdict %v, want sat", out.Verdict)
	}
	faulty := NewSim("faulty", solver.New(solver.Config{
		Defects: map[solver.Defect]bool{solver.DefFaultSyntheticPanic: true},
	}))
	if out := faulty.Check(sc); out.Verdict != Fault {
		t.Fatalf("synthetic panic verdict %v, want fault", out.Verdict)
	}
}

// TestSimBackendCrashDefect drives a catalogued crash defect through
// the adapter on a script shaped to trigger it, expecting Crash.
func TestSimBackendCrashDefect(t *testing.T) {
	defects, err := bugdb.DefectsIn(bugdb.Z3Sim, "trunk")
	if err != nil {
		t.Fatal(err)
	}
	b := NewSim("z3sim", solver.New(solver.Config{Defects: defects}))
	// The campaign-level harness tests exercise real crash triggers;
	// here it is enough that a defect-laden solver still classifies
	// cleanly on a benign script.
	if out := b.Check(testScript(t)); out.Verdict != Sat && out.Verdict != Unknown {
		t.Fatalf("unexpected verdict %v on benign script", out.Verdict)
	}
}

// TestNoGoroutineLeaks runs the whole fault matrix and checks the
// goroutine count settles back: no abandoned stdin writers, no stuck
// waiters, no timer leaks.
func TestNoGoroutineLeaks(t *testing.T) {
	sc := testScript(t)
	before := runtime.NumGoroutine()
	modes := [][]string{
		{"-mode", "sat"}, {"-mode", "unsat", "-decorate"}, {"-mode", "hang"},
		{"-mode", "crash"}, {"-mode", "garble"}, {"-mode", "truncate"},
		{"-mode", "silent"}, {"-mode", "sigkill"},
	}
	for _, args := range modes {
		timeout := 5 * time.Second
		if args[1] == "hang" {
			timeout = 100 * time.Millisecond
		}
		fake(t, timeout, 1, args...).Check(sc)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before matrix, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestOutputCaptureBounded checks the flood guard: stdout/stderr
// capture is truncated at the configured limits.
func TestOutputCaptureBounded(t *testing.T) {
	var lb limitBuf
	lb.limit = 16
	for i := 0; i < 100; i++ {
		n, err := lb.Write([]byte("0123456789"))
		if n != 10 || err != nil {
			t.Fatalf("limitBuf.Write = (%d, %v), want (10, nil)", n, err)
		}
	}
	if got := lb.b.Len(); got != 16 {
		t.Fatalf("buffer holds %d bytes, want 16", got)
	}
	if s := truncate("hello", 3); s != "hel" {
		t.Fatalf("truncate = %q", s)
	}
	_ = strconv.IntSize // keep strconv imported for the flake state assertions
}
