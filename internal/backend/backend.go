// Package backend crosses the process boundary: it abstracts "a solver
// that can check an SMT-LIB script" behind one interface with two
// families of implementations — hermetic in-process adapters over the
// simulated solvers (deterministic, the CI substrate) and supervised
// external solver binaries driven over stdin/stdout (ProcessBackend).
//
// The package is first and foremost a fault-containment layer. External
// binaries hang, crash, emit garbage, and die mid-write; every one of
// those outcomes is mapped into the closed Verdict taxonomy below, so
// the campaign's deterministic funnel only ever sees classified,
// bounded results:
//
//	sat / unsat / unknown — a parsed verdict (ParseVerdict normalizes
//	    CRLF, whitespace, comment lines, and case)
//	timeout     — the per-invocation wall-clock deadline expired; the
//	    process group was killed and reaped
//	crash       — the process exited nonzero or died on a signal
//	    (exit status and stderr are captured)
//	garbled     — the process exited zero but its output parsed to no
//	    verdict (including persistent empty output)
//	fault       — an in-process adapter panicked outside the simulated
//	    crash protocol: our bug, never the solver's
//	quarantined — the backend's circuit breaker is open; no check was
//	    performed and the campaign continues in degraded mode
//
// Transient failures (spawn errors, empty output) are retried with
// capped exponential backoff before being classified; K consecutive
// hard failures open the per-backend circuit breaker (Health) so one
// wedged binary cannot stall an entire campaign.
package backend

import (
	"repro/internal/smtlib"
	"repro/internal/solver"
)

// Verdict is the closed classification of one backend check.
type Verdict int

const (
	// Unknown is a parsed "unknown" answer.
	Unknown Verdict = iota
	// Sat is a parsed "sat" answer.
	Sat
	// Unsat is a parsed "unsat" answer.
	Unsat
	// Timeout means the check was cut off: the process deadline expired
	// (process backends) or the fuel meter drained (sim adapters).
	Timeout
	// Crash means the backend died: nonzero exit, signal death, a
	// simulated crash defect, or a spawn failure that survived retries.
	Crash
	// Garbled means the backend completed but produced no parseable
	// verdict (truncated, nonsense, or persistently empty output).
	Garbled
	// Fault marks an internal panic of an in-process adapter — the
	// testing tool's own bug, reported separately so it can never be
	// counted as a solver finding.
	Fault
	// Quarantined means the circuit breaker was open and the check was
	// skipped entirely.
	Quarantined
)

func (v Verdict) String() string {
	switch v {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	case Unknown:
		return "unknown"
	case Timeout:
		return "timeout"
	case Crash:
		return "crash"
	case Garbled:
		return "garbled"
	case Fault:
		return "fault"
	case Quarantined:
		return "quarantined"
	}
	return "invalid"
}

// Definite reports whether the verdict asserts satisfiability and can
// therefore be compared against an oracle.
func (v Verdict) Definite() bool { return v == Sat || v == Unsat }

// FromResult maps an in-process solver result into the backend verdict
// taxonomy (the sim adapter and cmd/solve share this mapping).
func FromResult(r solver.Result) Verdict {
	switch r {
	case solver.ResSat:
		return Sat
	case solver.ResUnsat:
		return Unsat
	case solver.ResTimeout:
		return Timeout
	}
	return Unknown
}

// Output is the fully classified result of one backend check.
type Output struct {
	Verdict Verdict
	// Reason carries diagnostic detail: the unknown reason, the crash
	// signal or spawn error, the garble description.
	Reason string
	// Raw is the normalized verdict token when parsing succeeded, or a
	// truncated copy of the raw stdout when it did not.
	Raw string
	// Stderr is the truncated captured stderr (process backends only).
	Stderr string
	// ExitCode is the process exit status; -1 when the process died on
	// a signal, was killed by the deadline, or never ran.
	ExitCode int
	// Retries counts the transient-failure retries consumed before this
	// classification.
	Retries int
	// Pid is the last spawned process id (process backends only; used
	// by the reap checks in tests).
	Pid int
}

// Backend checks scripts. Implementations are not required to be safe
// for concurrent use: the harness builds one instance per worker from a
// Spec, exactly as it does for solver-under-test instances.
type Backend interface {
	Name() string
	Check(sc *smtlib.Script) Output
}

// Resetter is implemented by backends with warm per-family state (the
// sim adapters); the harness resets it at family boundaries so verdict
// streams stay a pure function of the campaign configuration.
type Resetter interface{ ResetWarm() }

// Spec describes one configured backend and builds per-worker
// instances. Instances built from the same Spec share its Health, so
// the circuit breaker sees the backend's global failure streak.
type Spec struct {
	Name string
	// Argv is the external command line (binary path then arguments);
	// nil for in-process backends. It is recorded in reproducer
	// manifests so a finding names its backend even when the binary is
	// no longer available.
	Argv []string
	// Hermetic marks deterministic in-process backends: they preserve
	// the campaign's bit-identical thread-count invariance and are
	// exempt from the circuit breaker (their only "failures" are
	// deterministic fuel timeouts).
	Hermetic bool
	// Health is the shared breaker state (nil for hermetic backends).
	Health *Health
	// New builds one instance for one worker.
	New func() (Backend, error)
}

// NewSim wraps an in-process simulated solver as a hermetic backend.
// The adapter contains the same two fault domains RunSolver separates:
// a *solver.CrashError panic is the simulated solver crashing (Crash),
// any other panic is our own implementation failing (Fault).
func NewSim(name string, s *solver.Solver) Backend {
	return &simBackend{name: name, s: s}
}

type simBackend struct {
	name string
	s    *solver.Solver
}

func (b *simBackend) Name() string { return b.name }

func (b *simBackend) ResetWarm() { b.s.ResetWarm() }

func (b *simBackend) Check(sc *smtlib.Script) (out Output) {
	out.ExitCode = -1
	defer func() {
		if r := recover(); r != nil {
			if ce, ok := r.(*solver.CrashError); ok {
				out.Verdict = Crash
				out.Reason = ce.Error()
			} else {
				out.Verdict = Fault
				out.Reason = "internal panic in sim backend"
			}
		}
	}()
	res := b.s.SolveScript(sc)
	out.Verdict = FromResult(res.Result)
	out.Reason = res.Reason
	out.Raw = out.Verdict.String()
	out.ExitCode = 0
	return out
}
