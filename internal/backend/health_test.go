package backend

import "testing"

// TestHealthRecordEveryVerdict pins the breaker's reaction to every
// verdict in the taxonomy: hard failures grow the streak, parsed
// verdicts reset it, and Fault/Quarantined leave it exactly where it
// was (the explicit default branch in Record — a Fault must not reset
// a wedged binary's streak, and a Quarantined check never ran).
func TestHealthRecordEveryVerdict(t *testing.T) {
	cases := []struct {
		verdict     Verdict
		afterZero   int // streak after recording onto a fresh breaker
		afterStreak int // streak after recording onto streak=2
	}{
		{Sat, 0, 0},
		{Unsat, 0, 0},
		{Unknown, 0, 0},
		{Timeout, 1, 3},
		{Crash, 1, 3},
		{Garbled, 1, 3},
		{Fault, 0, 2},
		{Quarantined, 0, 2},
		{Verdict(99), 0, 2}, // out-of-range values take the default branch too
	}
	for _, tc := range cases {
		h := NewHealth(10)
		h.Record(tc.verdict)
		if streak, _ := h.State(); streak != tc.afterZero {
			t.Errorf("Record(%v) on fresh breaker: streak = %d, want %d", tc.verdict, streak, tc.afterZero)
		}

		h = NewHealth(10)
		h.Restore(2, false)
		h.Record(tc.verdict)
		if streak, _ := h.State(); streak != tc.afterStreak {
			t.Errorf("Record(%v) on streak 2: streak = %d, want %d", tc.verdict, streak, tc.afterStreak)
		}
	}
}

// TestHealthFaultDoesNotDelayOpening replays the motivating scenario:
// a wedged binary whose hard failures are interleaved with our own
// adapter faults must still trip the breaker after threshold hard
// failures — the faults neither reset nor advance the streak.
func TestHealthFaultDoesNotDelayOpening(t *testing.T) {
	h := NewHealth(3)
	for i := 0; i < 2; i++ {
		h.Record(Timeout)
		h.Record(Fault)
	}
	if !h.Allow() {
		t.Fatal("breaker opened after 2 hard failures with threshold 3")
	}
	h.Record(Crash)
	if h.Allow() {
		t.Fatal("breaker still closed after 3 hard failures interleaved with faults")
	}
	// Quarantined verdicts recorded while open must not disturb state.
	h.Record(Quarantined)
	if streak, open := h.State(); streak != 3 || !open {
		t.Fatalf("after Quarantined: streak=%d open=%v, want 3 true", streak, open)
	}
}
