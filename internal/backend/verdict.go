package backend

import "strings"

// ParseVerdict scans raw solver output for a verdict token. The
// normalization is deliberately forgiving about everything real solvers
// and shell plumbing do to the byte stream — CRLF line endings,
// trailing whitespace, banner/diagnostic lines, `;` comment lines,
// and any letter case — while staying strict about the token itself:
// a line must read exactly sat, unsat, unknown, or timeout after
// trimming, so truncated output ("uns") and prose ("unsatisfiable")
// never alias to a verdict.
//
// Lines that are neither comments nor verdict tokens are skipped: real
// solvers interleave `(error ...)` diagnostics before the verdict and
// models after it. Output with no verdict token on any line parses to
// (0, false) and is classified garbled by the caller.
func ParseVerdict(raw string) (Verdict, bool) {
	for len(raw) > 0 {
		line := raw
		if i := strings.IndexByte(raw, '\n'); i >= 0 {
			line, raw = raw[:i], raw[i+1:]
		} else {
			raw = ""
		}
		line = strings.TrimSpace(line) // eats the \r of CRLF endings too
		if line == "" || line[0] == ';' {
			continue
		}
		switch strings.ToLower(line) {
		case "sat":
			return Sat, true
		case "unsat":
			return Unsat, true
		case "unknown":
			return Unknown, true
		case "timeout":
			return Timeout, true
		}
	}
	return Unknown, false
}
