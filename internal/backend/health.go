package backend

import "sync"

// Health is one backend's shared supervision state: the circuit
// breaker over consecutive hard failures. All per-worker instances
// built from one Spec share one Health, so the breaker sees the
// backend's global failure streak, not a per-worker slice of it.
//
// The breaker exists so a wedged binary degrades the campaign instead
// of stalling it: after Threshold consecutive hard failures (timeout,
// crash, garbled — every classification that consumed the full
// deadline or retry budget without producing a verdict), Allow starts
// returning false, checks are skipped with Verdict Quarantined, and
// the campaign finishes with an explicit per-backend health summary.
// Any parsed verdict resets the streak.
//
// Health is intentionally wall-clock- and scheduling-dependent (the
// failures it counts are), so it is only attached to process backends;
// hermetic backends keep the campaign's determinism guarantees and
// carry a nil Health.
type Health struct {
	mu        sync.Mutex
	threshold int
	streak    int
	open      bool
}

// NewHealth returns breaker state that opens after threshold
// consecutive hard failures (values < 1 mean 1).
func NewHealth(threshold int) *Health {
	if threshold < 1 {
		threshold = 1
	}
	return &Health{threshold: threshold}
}

// Allow reports whether a check may run. A nil Health always allows.
func (h *Health) Allow() bool {
	if h == nil {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return !h.open
}

// Record folds one classified check into the breaker state.
func (h *Health) Record(v Verdict) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch v {
	case Timeout, Crash, Garbled:
		// Hard failures: the check consumed its full deadline or retry
		// budget without producing a verdict.
		h.streak++
		if h.streak >= h.threshold {
			h.open = true
		}
	case Sat, Unsat, Unknown:
		// A parsed verdict proves the binary is alive; the streak resets.
		h.streak = 0
	default:
		// Fault and Quarantined are deliberate no-ops, by decision rather
		// than omission. A Fault is our own adapter's panic — no evidence
		// about the external binary either way, and crucially it must not
		// reset the streak of a wedged binary. A Quarantined verdict means
		// no check ran at all (the breaker was already open), so there is
		// nothing to fold in; counting it would double-charge the streak.
	}
}

// State exports the breaker's mutable state for campaign
// checkpointing. A nil Health reports a zero state.
func (h *Health) State() (streak int, open bool) {
	if h == nil {
		return 0, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.streak, h.open
}

// Restore overwrites the breaker's mutable state: campaign resume
// rehydrates each backend's failure streak so a breaker that was about
// to open does not get a fresh allowance. A nil Health no-ops.
func (h *Health) Restore(streak int, open bool) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.streak = streak
	h.open = open
}

// Quarantined reports whether the breaker is open.
func (h *Health) Quarantined() bool {
	if h == nil {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.open
}
