package backend

import (
	"bytes"
	"fmt"
	"io"
	"os/exec"
	"sync"
	"syscall"
	"time"

	"repro/internal/smtlib"
)

// Capture limits: enough to diagnose any real solver, bounded so a
// garbage-flooding or slow-dripping binary cannot balloon the campaign.
const (
	maxStdout = 64 << 10
	maxStderr = 8 << 10
	// rawPreview is how much unparseable stdout is kept in Output.Raw.
	rawPreview = 256
)

// ProcessConfig configures one external solver backend.
type ProcessConfig struct {
	// Name labels the backend in reports, findings, and manifests.
	Name string
	// Path and Args form the command line; the script is written to the
	// process's stdin and the verdict read from its stdout.
	Path string
	Args []string
	// Timeout is the per-invocation wall-clock deadline. On expiry the
	// whole process group is SIGKILLed and the run classifies as
	// Timeout. Default 10s.
	Timeout time.Duration
	// Retries bounds how many times a transient failure (spawn error,
	// empty output) is retried before it is classified. Default 2.
	Retries int
	// Backoff is the initial retry delay; it doubles per retry and is
	// capped at BackoffCap. Defaults 50ms / 1s.
	Backoff    time.Duration
	BackoffCap time.Duration
	// BreakerThreshold is the circuit breaker's K: consecutive hard
	// failures before the backend is quarantined. Default 5.
	BreakerThreshold int
	// Sleep replaces the backoff sleep (test hook; nil = real sleep).
	Sleep func(time.Duration)
}

func (c ProcessConfig) withDefaults() ProcessConfig {
	if c.Timeout <= 0 {
		c.Timeout = 10 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 50 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.Sleep == nil {
		// Referencing (not calling) time.Sleep: the backoff between
		// external solver invocations is inherently wall-clock.
		c.Sleep = time.Sleep
	}
	return c
}

// ProcessSpec builds the Spec for an external solver binary. All
// per-worker instances share one Health, so the circuit breaker counts
// the backend's global failure streak.
func ProcessSpec(cfg ProcessConfig) Spec {
	cfg = cfg.withDefaults()
	h := NewHealth(cfg.BreakerThreshold)
	argv := append([]string{cfg.Path}, cfg.Args...)
	return Spec{
		Name:   cfg.Name,
		Argv:   argv,
		Health: h,
		New: func() (Backend, error) {
			return &ProcessBackend{cfg: cfg, health: h}, nil
		},
	}
}

// ProcessBackend drives one external SMT-LIB solver binary over
// stdin/stdout under full fault containment: per-invocation wall-clock
// deadline with process-group kill and guaranteed reap, stdout/stderr/
// exit-status capture, output normalization, bounded retry with capped
// exponential backoff for transient failures, and a shared circuit
// breaker that quarantines the backend after K consecutive hard
// failures.
type ProcessBackend struct {
	cfg    ProcessConfig
	health *Health
}

// NewProcess builds a standalone ProcessBackend (tests and tools;
// campaigns go through ProcessSpec so instances share Health).
func NewProcess(cfg ProcessConfig) *ProcessBackend {
	cfg = cfg.withDefaults()
	return &ProcessBackend{cfg: cfg, health: NewHealth(cfg.BreakerThreshold)}
}

func (b *ProcessBackend) Name() string { return b.cfg.Name }

// Health exposes the backend's breaker state.
func (b *ProcessBackend) Health() *Health { return b.health }

// Check runs the solver binary on the script. It never blocks longer
// than roughly (Retries+1) × Timeout plus the backoff sleeps, never
// leaks a child process (every spawn is reaped before Check returns),
// and always returns a classified Output.
func (b *ProcessBackend) Check(sc *smtlib.Script) Output {
	if !b.health.Allow() {
		return Output{Verdict: Quarantined, ExitCode: -1,
			Reason: "circuit breaker open: backend quarantined"}
	}
	text := smtlib.Print(sc)
	delay := b.cfg.Backoff
	var out Output
	for attempt := 0; ; attempt++ {
		out = classifyRun(b.runOnce(text))
		out.Retries = attempt
		if !out.transientFailure() || attempt >= b.cfg.Retries {
			break
		}
		b.cfg.Sleep(delay)
		delay = min(delay*2, b.cfg.BackoffCap)
	}
	b.health.Record(out.Verdict)
	return out
}

// transientFailure reports whether the classified run is worth
// retrying: the process never produced a byte of stdout and was not cut
// off by the deadline — spawn failures, startup flakes, and empty
// output, the failure modes a retry can actually fix. A timeout is
// never transient (retrying it would multiply the stall), and neither
// is any run that produced output (the answer would not change).
func (o *Output) transientFailure() bool {
	switch o.Verdict {
	case Crash, Garbled:
		return o.Raw == ""
	}
	return false
}

// rawRun is the unclassified result of one spawn.
type rawRun struct {
	spawnErr error
	timedOut bool
	exitCode int    // -1 when signaled or never ran
	signal   string // non-empty when the process died on a signal
	stdout   []byte
	stderr   []byte
	pid      int
}

// runOnce spawns the binary, writes the script, and waits for exit or
// deadline. The child runs in its own process group; on deadline the
// whole group is SIGKILLed (so grandchildren die too) and the child is
// still reaped by Wait — runOnce never returns with an un-reaped child.
func (b *ProcessBackend) runOnce(text string) rawRun {
	r := rawRun{exitCode: -1}
	cmd := exec.Command(b.cfg.Path, b.cfg.Args...)
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	var stdout, stderr limitBuf
	stdout.limit, stderr.limit = maxStdout, maxStderr
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		r.spawnErr = err
		return r
	}
	if err := cmd.Start(); err != nil {
		stdin.Close()
		r.spawnErr = err
		return r
	}
	r.pid = cmd.Process.Pid

	// Feed the script from a goroutine: a hung child that never reads
	// stdin must not block Check. Once the group is killed the pipe
	// write fails with EPIPE and the goroutine exits.
	go func() {
		io.WriteString(stdin, text)
		stdin.Close()
	}()

	// Deadline enforcement. The mutex-guarded done flag keeps the kill
	// strictly before the reap: once Wait has returned, the pid may be
	// recycled, so a late-firing timer must never signal it.
	var mu sync.Mutex
	done := false
	//golint:allow wall-clock — the per-invocation deadline on an external solver process; fuel cannot meter a foreign binary
	timer := time.AfterFunc(b.cfg.Timeout, func() {
		mu.Lock()
		defer mu.Unlock()
		if done {
			return
		}
		r.timedOut = true
		// Negative pid addresses the whole process group (Setpgid made
		// the child its own group leader), so helpers it spawned die
		// with it. The child stays a zombie until Wait reaps it, so the
		// pid cannot be recycled while this fires.
		syscall.Kill(-r.pid, syscall.SIGKILL)
	})
	err = cmd.Wait() // guaranteed reap: every spawned child is waited on
	mu.Lock()
	done = true
	mu.Unlock()
	timer.Stop()

	r.stdout = stdout.b.Bytes()
	r.stderr = stderr.b.Bytes()
	if state := cmd.ProcessState; state != nil {
		r.exitCode = state.ExitCode() // -1 when signaled
		if ws, ok := state.Sys().(syscall.WaitStatus); ok && ws.Signaled() {
			r.signal = ws.Signal().String()
		}
	}
	if err != nil && r.exitCode == 0 {
		// Wait failed for an I/O reason with a clean exit; treat as
		// spawn-level trouble so it is retried, not misread as garbled.
		r.spawnErr = err
	}
	return r
}

// classifyRun maps one raw spawn result into the verdict taxonomy.
func classifyRun(r rawRun) Output {
	out := Output{ExitCode: r.exitCode, Pid: r.pid, Stderr: truncate(string(r.stderr), maxStderr)}
	if r.spawnErr != nil {
		out.Verdict = Crash
		out.Reason = fmt.Sprintf("spawn: %v", r.spawnErr)
		return out
	}
	if r.timedOut {
		out.Verdict = Timeout
		out.Reason = "wall-clock deadline expired; process group killed"
		out.Raw = truncate(string(r.stdout), rawPreview)
		return out
	}
	if v, ok := ParseVerdict(string(r.stdout)); ok {
		out.Verdict = v
		out.Raw = v.String()
		return out
	}
	out.Raw = truncate(trimmed(r.stdout), rawPreview)
	switch {
	case r.signal != "":
		out.Verdict = Crash
		out.Reason = "signal: " + r.signal
	case r.exitCode != 0:
		out.Verdict = Crash
		out.Reason = fmt.Sprintf("exit status %d", r.exitCode)
	case out.Raw == "":
		out.Verdict = Garbled
		out.Reason = "empty output"
	default:
		out.Verdict = Garbled
		out.Reason = "no verdict in output"
	}
	return out
}

func trimmed(b []byte) string { return string(bytes.TrimSpace(b)) }

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// limitBuf keeps the first limit bytes and silently drops the rest, so
// a flooding child cannot grow campaign memory; Write never errors
// (an error would kill the child's pipe mid-run).
type limitBuf struct {
	b     bytes.Buffer
	limit int
}

func (l *limitBuf) Write(p []byte) (int, error) {
	if room := l.limit - l.b.Len(); room > 0 {
		if len(p) > room {
			l.b.Write(p[:room])
		} else {
			l.b.Write(p)
		}
	}
	return len(p), nil
}
