// Command fakesolver is the fault-injection fixture for the
// process-backend test suite: a scriptable stand-in for an external
// SMT solver binary. It is never checked in as a binary — the tests
// (and the ci.sh backend stage) build it on the fly.
//
// The -mode flag selects the failure to simulate:
//
//	sat, unsat, unknown — print that verdict (decorated with banners,
//	    CRLF endings, and mixed case under -decorate)
//	hang     — read stdin forever and never answer (deadline test)
//	crash    — print to stderr and exit nonzero (-exit, default 139)
//	sigkill  — die on SIGKILL (signal-death capture test)
//	garble   — exit 0 with output that contains no verdict
//	truncate — exit 0 with a cut-off verdict token ("uns")
//	drip     — print "unsat" one byte at a time, sleeping -drip-ms
//	    between bytes (slow-drip vs. deadline test)
//	silent   — exit 0 with no output at all (transient-failure test)
//	flake    — fail with empty output while the invocation counter in
//	    -state is below -failures, then answer -then (retry test)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"syscall"
	"time"
)

func main() {
	mode := flag.String("mode", "sat", "behaviour to simulate")
	decorate := flag.Bool("decorate", false, "wrap the verdict in banner comments, CRLF endings, and upper case")
	exitCode := flag.Int("exit", 139, "exit status for -mode crash")
	stderrMsg := flag.String("stderr", "", "message to print on stderr before acting")
	statePath := flag.String("state", "", "invocation-counter file for -mode flake")
	failures := flag.Int("failures", 1, "invocations to fail before recovering (-mode flake)")
	then := flag.String("then", "sat", "verdict printed once -mode flake recovers")
	dripMS := flag.Int("drip-ms", 20, "per-byte delay for -mode drip")
	flag.Parse()

	if *stderrMsg != "" {
		fmt.Fprintln(os.Stderr, *stderrMsg)
	}

	switch *mode {
	case "sat", "unsat", "unknown":
		drain()
		verdict(*mode, *decorate)
	case "hang":
		// Never answer; the backend's deadline must kill us. Sleep in a
		// loop rather than select{} — with stdin drained every goroutine
		// would be idle and the runtime's deadlock detector would exit
		// for us, defeating the point.
		drain()
		for {
			//golint:allow wall-clock — fault-injection fixture simulating a hung external solver
			time.Sleep(time.Hour)
		}
	case "crash":
		drain()
		os.Exit(*exitCode)
	case "sigkill":
		drain()
		// SIGKILL cannot be caught — not even by the Go runtime, whose
		// SIGSEGV handler would otherwise turn signal death into an
		// exit-2 panic — so this is a genuine die-on-signal.
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
		select {} // unreachable: the signal kills us
	case "garble":
		drain()
		fmt.Println("; preamble comment")
		fmt.Println("segmentation fault dumped core (not really)")
		fmt.Println("unsatisfiable-ish")
	case "truncate":
		drain()
		fmt.Print("uns")
	case "drip":
		drain()
		for _, c := range []byte("unsat\n") {
			os.Stdout.Write([]byte{c})
			//golint:allow wall-clock — fault-injection fixture simulating a slow external solver
			time.Sleep(time.Duration(*dripMS) * time.Millisecond)
		}
	case "silent":
		drain()
	case "flake":
		drain()
		n := bump(*statePath)
		if n <= *failures {
			os.Exit(1) // empty output + nonzero exit: a transient flake
		}
		verdict(*then, *decorate)
	default:
		fmt.Fprintf(os.Stderr, "fakesolver: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func drain() { io.Copy(io.Discard, os.Stdin) }

// verdict prints the answer, optionally decorated with everything the
// output normalizer must tolerate: banner comments, CRLF endings,
// upper case, and trailing model-ish lines.
func verdict(v string, decorate bool) {
	if !decorate {
		fmt.Println(v)
		return
	}
	out := "; fakesolver v1.0 (banner)\r\n" +
		";; warming up\r\n" +
		"  " + upper(v) + "  \r\n" +
		"(model)\r\n"
	io.WriteString(os.Stdout, out)
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}

// bump increments the invocation counter stored in path and returns the
// new value. The flake tests run invocations sequentially, so plain
// read-modify-write is enough.
func bump(path string) int {
	n := 0
	if data, err := os.ReadFile(path); err == nil {
		n, _ = strconv.Atoi(string(data))
	}
	n++
	os.WriteFile(path, []byte(strconv.Itoa(n)), 0o644)
	return n
}
