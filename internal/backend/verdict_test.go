package backend

import "testing"

// TestParseVerdict drives the shared output normalizer through the
// byte streams real solvers and shell plumbing produce: CRLF endings,
// trailing whitespace, comment and banner lines, mixed case, models
// after the verdict, diagnostics before it — plus the garbled and
// partial outputs that must never alias to a verdict.
func TestParseVerdict(t *testing.T) {
	tests := []struct {
		name string
		raw  string
		want Verdict
		ok   bool
	}{
		{"plain sat", "sat\n", Sat, true},
		{"plain unsat", "unsat\n", Unsat, true},
		{"plain unknown", "unknown\n", Unknown, true},
		{"timeout token", "timeout\n", Timeout, true},
		{"no trailing newline", "unsat", Unsat, true},
		{"crlf", "sat\r\n", Sat, true},
		{"upper case crlf", "UNSAT\r\n", Unsat, true},
		{"mixed case", "Sat\n", Sat, true},
		{"leading and trailing spaces", "   unsat   \n", Unsat, true},
		{"tab padding", "\tsat\t\n", Sat, true},
		{"comment lines before verdict", "; banner\n;; warming up\nunsat\n", Unsat, true},
		{"comment-only prefix crlf", "; fakesolver v1.0\r\n  SAT  \r\n(model)\r\n", Sat, true},
		{"diagnostics before verdict", "(error \"unbound symbol\")\nunsat\n", Unsat, true},
		{"model after verdict", "sat\n(\n  (define-fun x () Int 3)\n)\n", Sat, true},
		{"blank lines", "\n\n\nsat\n", Sat, true},

		{"empty", "", Unknown, false},
		{"whitespace only", "  \r\n\t\n", Unknown, false},
		{"comment only", "; nothing to see\n", Unknown, false},
		{"truncated token", "uns", Unknown, false},
		{"prose is not a verdict", "unsatisfiable\n", Unknown, false},
		{"superstring", "satisfied\n", Unknown, false},
		{"garbage", "segmentation fault dumped core\n", Unknown, false},
		{"token inside sentence", "the answer is sat today\n", Unknown, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := ParseVerdict(tc.raw)
			if ok != tc.ok {
				t.Fatalf("ParseVerdict(%q) ok = %v, want %v", tc.raw, ok, tc.ok)
			}
			if ok && got != tc.want {
				t.Fatalf("ParseVerdict(%q) = %v, want %v", tc.raw, got, tc.want)
			}
		})
	}
}

func TestVerdictStrings(t *testing.T) {
	pairs := map[Verdict]string{
		Sat: "sat", Unsat: "unsat", Unknown: "unknown", Timeout: "timeout",
		Crash: "crash", Garbled: "garbled", Fault: "fault", Quarantined: "quarantined",
	}
	for v, want := range pairs {
		if v.String() != want {
			t.Errorf("Verdict(%d).String() = %q, want %q", int(v), v.String(), want)
		}
	}
	if !Sat.Definite() || !Unsat.Definite() {
		t.Error("sat/unsat must be definite")
	}
	if Unknown.Definite() || Timeout.Definite() || Crash.Definite() || Garbled.Definite() {
		t.Error("only sat/unsat are definite")
	}
}
