package watchdog

import (
	"testing"
	"time"
)

func TestRunCompletes(t *testing.T) {
	ran := false
	if !Run(time.Second, func() { ran = true }) {
		t.Error("fast function should complete within the deadline")
	}
	if !ran {
		t.Error("function did not run")
	}
}

func TestRunTimesOut(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	if Run(5*time.Millisecond, func() { <-release }) {
		t.Error("blocked function should miss the deadline")
	}
}

func TestZeroDeadlineRunsInline(t *testing.T) {
	ran := false
	if !Run(0, func() { ran = true }) {
		t.Error("zero deadline should run inline and report completion")
	}
	if !ran {
		t.Error("function did not run")
	}
}
