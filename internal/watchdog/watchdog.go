// Package watchdog is the repository's single wall-clock escape hatch:
// an opt-in backstop that bounds a function call by real time. The
// fuel meter (internal/fuel) is the primary deadline — deterministic
// and thread-count invariant — so nothing in the solver or harness
// *classifies* by wall-clock. The watchdog exists for the residual
// risk the meter cannot cover (a genuine infinite loop introduced by a
// future defect outside any metered engine): a run it cuts off is
// quarantined by the harness, never counted as a finding.
//
// This package is the only non-benchmark code allowed to use package
// time; the golint wall-clock rule allowlists exactly this directory
// and fails the build-time lint anywhere else.
package watchdog

import "time"

// Run executes f, waiting at most d for it to finish. It reports
// whether f completed. On timeout, Run returns with f still executing
// in its abandoned goroutine — the caller must not reuse any state f
// touches (the harness discards the worker's solver instance and
// builds a fresh one). The abandoned goroutine exits once f returns;
// with a fuel-limited solver that is guaranteed to happen.
func Run(d time.Duration, f func()) bool {
	if d <= 0 {
		f()
		return true
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		f()
	}()
	//golint:allow wall-clock — the watchdog IS the wall-clock backstop: fuel cannot bound a loop that forgot to charge fuel
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-done:
		return true
	case <-t.C:
		return false
	}
}
