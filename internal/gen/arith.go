package gen

import (
	"math/big"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// satArith builds a satisfiable arithmetic seed model-first.
func (g *Generator) satArith() *core.Seed {
	nVars := 2 + g.rng.Intn(3)
	decls := make([]*smtlib.DeclareFun, 0, nVars+2)
	witness := eval.Model{}
	var vars []*ast.Var
	for i := 0; i < nVars; i++ {
		name := g.fresh("v")
		decls = append(decls, &smtlib.DeclareFun{Name: name, Sort: g.tr.sort})
		v := ast.NewVar(name, g.tr.sort)
		vars = append(vars, v)
		if g.tr.sort == ast.SortInt {
			witness[name] = eval.IntV{V: g.randInt()}
		} else {
			witness[name] = eval.RealV{V: g.randRat()}
		}
	}

	nAtoms := 2 + g.rng.Intn(4)
	var asserts []ast.Term
	for i := 0; i < nAtoms; i++ {
		asserts = append(asserts, g.trueArithAtom(vars, witness))
	}

	// Figure-2-style boolean scaffolding: w := atom; assert w (or ¬w).
	if g.rng.Intn(3) == 0 {
		wName := g.fresh("w")
		decls = append(decls, &smtlib.DeclareFun{Name: wName, Sort: ast.SortBool})
		w := ast.NewVar(wName, ast.SortBool)
		atom := g.trueArithAtom(vars, witness)
		truth, polarity := g.orientBool(atom, witness)
		witness[wName] = eval.BoolV(truth)
		asserts = append(asserts, ast.Eq(w, polarity))
		if truth {
			asserts = append(asserts, ast.Term(w))
		} else {
			asserts = append(asserts, ast.Not(w))
		}
	}

	// Quantified logics: add a valid quantified conjunct.
	if g.tr.quantified && g.rng.Intn(2) == 0 {
		asserts = append(asserts, g.validQuantified(vars))
	}

	// Disjunctive structure: (or trueAtom anyAtom).
	if g.rng.Intn(3) == 0 {
		noise := g.arbitraryArithAtom(vars)
		tr := g.trueArithAtom(vars, witness)
		if g.rng.Intn(2) == 0 {
			asserts = append(asserts, ast.Or(tr, noise))
		} else {
			asserts = append(asserts, ast.Or(noise, tr))
		}
	}

	return &core.Seed{Script: g.script(decls, asserts), Status: core.StatusSat, Witness: witness}
}

// orientBool returns the atom's truth under the witness and the atom
// itself (possibly negated so that the returned term's truth matches
// the returned bool — callers pair it with a boolean variable).
func (g *Generator) orientBool(atom ast.Term, witness eval.Model) (bool, ast.Term) {
	truth, err := eval.Bool(atom, witness)
	if err != nil {
		return true, ast.True
	}
	return truth, atom
}

// trueArithAtom builds a random arithmetic atom that holds under the
// witness: generate a term, evaluate it, orient a relation around the
// value.
func (g *Generator) trueArithAtom(vars []*ast.Var, witness eval.Model) ast.Term {
	t := g.arithTerm(vars, 2)
	v, err := eval.Term(t, witness)
	if err != nil {
		return ast.True
	}
	val := ratOf(v)
	offset := big.NewRat(int64(g.rng.Intn(5)), 1)
	switch g.rng.Intn(6) {
	case 0: // t = val
		return ast.Eq(t, g.numLit(val))
	case 1: // t ≤ val + offset
		return ast.Le(t, g.numLit(new(big.Rat).Add(val, offset)))
	case 2: // t ≥ val − offset
		return ast.Ge(t, g.numLit(new(big.Rat).Sub(val, offset)))
	case 3: // t < val + offset + 1
		up := new(big.Rat).Add(val, offset)
		up.Add(up, big.NewRat(1, 1))
		return ast.Lt(t, g.numLit(up))
	case 4: // t > val − offset − 1
		dn := new(big.Rat).Sub(val, offset)
		dn.Sub(dn, big.NewRat(1, 1))
		return ast.Gt(t, g.numLit(dn))
	default: // distinct(t, val+1+offset)
		d := new(big.Rat).Add(val, offset)
		d.Add(d, big.NewRat(1, 1))
		return ast.Not(ast.Eq(t, g.numLit(d)))
	}
}

// arbitraryArithAtom builds an atom with no truth guarantee (noise for
// disjunctions).
func (g *Generator) arbitraryArithAtom(vars []*ast.Var) ast.Term {
	t := g.arithTerm(vars, 2)
	c := g.numLit(g.randRat())
	switch g.rng.Intn(4) {
	case 0:
		return ast.Lt(t, c)
	case 1:
		return ast.Gt(t, c)
	case 2:
		return ast.Eq(t, c)
	default:
		return ast.Le(t, c)
	}
}

// arithTerm builds a random term of the generator's numeric sort.
func (g *Generator) arithTerm(vars []*ast.Var, depth int) ast.Term {
	if depth == 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(2) == 0 {
			return vars[g.rng.Intn(len(vars))]
		}
		return g.numLit(g.randRat())
	}
	a := g.arithTerm(vars, depth-1)
	b := g.arithTerm(vars, depth-1)
	choices := 4
	if g.tr.nonlinear {
		choices = 6
	}
	switch g.rng.Intn(choices) {
	case 0:
		return ast.Add(a, b)
	case 1:
		return ast.Sub(a, b)
	case 2:
		return ast.Neg(a)
	case 3: // scalar multiple (linear)
		return ast.Mul(g.numLit(big.NewRat(int64(g.rng.Intn(7)-3), 1)), a)
	case 4: // nonlinear product
		return ast.Mul(a, b)
	default: // nonlinear division, guarded against a zero divisor
		if sign, isLit := litSign(b); isLit && sign == 0 {
			// A literal-zero divisor makes the guard statically false
			// and the division dead; emit the dividend alone.
			return a
		}
		var d ast.Term
		if g.tr.sort == ast.SortReal {
			d = ast.MustApp(ast.OpRealDiv, a, b)
		} else {
			d = ast.MustApp(ast.OpIntDiv, a, b)
		}
		if _, isLit := litSign(b); isLit {
			// Nonzero literal divisor: the guard would be statically
			// true, so the division needs none.
			return d
		}
		guard := ast.MustApp(ast.OpDistinct, b, g.numLit(big.NewRat(0, 1)))
		return ast.Ite(guard, d, a)
	}
}

// litSign returns the sign of a numeric literal, seeing through unary
// minus (mirrors the analysis pass's literal test); ok=false for
// non-literal terms.
func litSign(t ast.Term) (int, bool) {
	switch n := t.(type) {
	case *ast.IntLit:
		return n.V.Sign(), true
	case *ast.RealLit:
		return n.V.Sign(), true
	case *ast.App:
		if n.Op == ast.OpNeg && len(n.Args) == 1 {
			if s, ok := litSign(n.Args[0]); ok {
				return -s, true
			}
		}
	}
	return 0, false
}

// validQuantified returns a closed-under-witness valid quantified
// conjunct (true under every assignment of the free variables).
func (g *Generator) validQuantified(vars []*ast.Var) ast.Term {
	t := vars[g.rng.Intn(len(vars))]
	h := ast.NewVar(g.fresh("h"), g.tr.sort)
	sv := []ast.SortedVar{{Name: h.Name, Sort: g.tr.sort}}
	switch g.rng.Intn(3) {
	case 0: // ∃h. h > t
		q, _ := ast.NewQuant(false, sv, ast.Gt(h, t))
		return q
	case 1: // ∀h. h > t ⇒ h ≥ t
		q, _ := ast.NewQuant(true, sv, ast.MustApp(ast.OpImplies, ast.Gt(h, t), ast.Ge(h, t)))
		return q
	default: // ¬∀h. h ≤ t
		q, _ := ast.NewQuant(true, sv, ast.Le(h, t))
		return ast.Not(q)
	}
}

// unsatArith builds an unsatisfiable arithmetic seed: contradiction
// core plus noise.
func (g *Generator) unsatArith() *core.Seed {
	nVars := 2 + g.rng.Intn(3)
	decls := make([]*smtlib.DeclareFun, 0, nVars)
	noiseWitness := eval.Model{}
	var vars []*ast.Var
	for i := 0; i < nVars; i++ {
		name := g.fresh("u")
		decls = append(decls, &smtlib.DeclareFun{Name: name, Sort: g.tr.sort})
		vars = append(vars, ast.NewVar(name, g.tr.sort))
		if g.tr.sort == ast.SortInt {
			noiseWitness[name] = eval.IntV{V: g.randInt()}
		} else {
			noiseWitness[name] = eval.RealV{V: g.randRat()}
		}
	}

	asserts := g.arithContradiction(vars)

	// Noise: individually satisfiable atoms (conjunction with the core
	// stays unsat regardless).
	for i := 0; i < g.rng.Intn(3); i++ {
		asserts = append(asserts, g.trueArithAtom(vars, noiseWitness))
	}
	g.rng.Shuffle(len(asserts), func(i, j int) { asserts[i], asserts[j] = asserts[j], asserts[i] })

	return &core.Seed{Script: g.script(decls, asserts), Status: core.StatusUnsat}
}

// arithContradiction returns an unsatisfiable conjunction of atoms.
func (g *Generator) arithContradiction(vars []*ast.Var) []ast.Term {
	t := g.arithTerm(vars, 1)
	x := vars[g.rng.Intn(len(vars))]
	y := vars[g.rng.Intn(len(vars))]
	c := g.numLit(g.randRat())

	cores := []func() []ast.Term{
		func() []ast.Term { // t > c ∧ t < c
			return []ast.Term{ast.Gt(t, c), ast.Lt(t, c)}
		},
		func() []ast.Term { // t = c ∧ t = c+1
			c2 := ast.Add(c, g.numLit(big.NewRat(1, 1)))
			return []ast.Term{ast.Eq(t, c), ast.Eq(t, c2)}
		},
		func() []ast.Term { // x > y ∧ y > x
			return []ast.Term{ast.Gt(x, y), ast.Gt(y, x)}
		},
		func() []ast.Term { // the paper's φ3 shape: (1 + t) + 6 ≠ 7 + t
			one := g.numLit(big.NewRat(1, 1))
			six := g.numLit(big.NewRat(6, 1))
			seven := g.numLit(big.NewRat(7, 1))
			return []ast.Term{ast.Not(ast.Eq(ast.Add(ast.Add(one, t), six), ast.Add(seven, t)))}
		},
	}
	if g.tr.sort == ast.SortInt {
		cores = append(cores, func() []ast.Term { // parity: 2x = 2y + 1
			two := g.numLit(big.NewRat(2, 1))
			one := g.numLit(big.NewRat(1, 1))
			return []ast.Term{ast.Eq(ast.Mul(two, x), ast.Add(ast.Mul(two, y), one))}
		})
	}
	if g.tr.nonlinear && g.tr.sort == ast.SortReal {
		cores = append(cores, func() []ast.Term { // the paper's φ4 shape
			v := x
			w := y
			if len(vars) >= 3 {
				v, w = vars[1], vars[2]
			}
			// v > 0 is implied (0 < x < v) but asserted explicitly so
			// the division carries a syntactic nonzero guard.
			return []ast.Term{
				ast.Gt(x, g.numLit(big.NewRat(0, 1))),
				ast.Lt(x, v), ast.Ge(w, v),
				ast.Gt(v, g.numLit(big.NewRat(0, 1))),
				ast.Lt(ast.MustApp(ast.OpRealDiv, w, v), g.numLit(big.NewRat(0, 1))),
			}
		})
		cores = append(cores, func() []ast.Term { // x² < 0
			return []ast.Term{ast.Lt(ast.Mul(x, x), g.numLit(big.NewRat(0, 1)))}
		})
	}
	if g.tr.quantified {
		cores = append(cores, func() []ast.Term { // ¬∃h. h > t
			h := ast.NewVar(g.fresh("h"), g.tr.sort)
			q, _ := ast.NewQuant(false, []ast.SortedVar{{Name: h.Name, Sort: g.tr.sort}}, ast.Gt(h, t))
			return []ast.Term{ast.Not(q)}
		})
	}
	return cores[g.rng.Intn(len(cores))]()
}

func ratOf(v eval.Value) *big.Rat {
	switch n := v.(type) {
	case eval.IntV:
		return new(big.Rat).SetInt(n.V)
	case eval.RealV:
		return n.V
	default:
		return new(big.Rat)
	}
}
