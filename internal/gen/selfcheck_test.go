package gen

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/smtlib"
)

// requireClean runs every registered analysis pass over a script and
// fails on any diagnostic at warning severity or above. Info-level
// notes (trivial constant atoms etc.) are tolerated: generators
// legitimately emit constant noise atoms.
func requireClean(t *testing.T, s *smtlib.Script, context string) {
	t.Helper()
	diags := analysis.AnalyzeScript(s, nil, analysis.Passes()...)
	if bad := analysis.Filter(diags, analysis.SeverityWarning); len(bad) > 0 {
		t.Fatalf("%s: analysis found %d problems:\n%v\nscript:\n%s",
			context, len(bad), bad, smtlib.Print(s))
	}
	// Also lint the printed-and-reparsed form — the shape solvers and
	// yylint actually see. Printing can change term structure (negative
	// numerals become (- n) applications), so in-memory cleanliness
	// alone does not imply the .smt2 file is clean.
	text := smtlib.Print(s)
	reparsed, err := smtlib.ParseScript(text)
	if err != nil {
		t.Fatalf("%s: reparse failed: %v\n%s", context, err, text)
	}
	diags = analysis.AnalyzeScript(reparsed, nil, analysis.Passes()...)
	if bad := analysis.Filter(diags, analysis.SeverityWarning); len(bad) > 0 {
		t.Fatalf("%s (reparsed): analysis found %d problems:\n%v\nscript:\n%s",
			context, len(bad), bad, text)
	}
}

// TestGeneratedSeedsPassAnalysis runs the full static-analysis suite
// (well-sortedness, logic conformance, division guards, fusion
// postconditions, trivial-atom notes) over every generator's output:
// the pipeline's own seeds must be diagnostic-free at warning level.
func TestGeneratedSeedsPassAnalysis(t *testing.T) {
	for _, logic := range AllLogics {
		logic := logic
		t.Run(string(logic), func(t *testing.T) {
			g, err := New(logic, 23)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				requireClean(t, g.Sat().Script, "sat seed")
				requireClean(t, g.Unsat().Script, "unsat seed")
			}
		})
	}
}

// TestFusedScriptsPassAnalysis fuses seed pairs in every mode
// combination and requires the fused output to be warning-free too —
// in particular, every division a fusion function introduces must
// carry a syntactic nonzero guard, and renamed ancestor variables must
// not collide.
func TestFusedScriptsPassAnalysis(t *testing.T) {
	for _, logic := range AllLogics {
		logic := logic
		t.Run(string(logic), func(t *testing.T) {
			g, err := New(logic, 29)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(31))
			checked := 0
			for i := 0; i < 60 && checked < 15; i++ {
				pairs := [][2]*core.Seed{
					{g.Sat(), g.Sat()},
					{g.Unsat(), g.Unsat()},
					{g.Sat(), g.Unsat()},
				}
				for _, p := range pairs {
					fused, err := core.Fuse(p[0], p[1], rng, core.Options{})
					if err != nil {
						continue
					}
					checked++
					requireClean(t, fused.Script, "fused "+fused.Mode.String())
				}
			}
			if checked == 0 {
				t.Fatalf("no fusable pairs for %s", logic)
			}
		})
	}
}

// TestConcatScriptsPassAnalysis applies the same requirement to the
// ConcatFuzz baseline.
func TestConcatScriptsPassAnalysis(t *testing.T) {
	for _, logic := range AllLogics {
		logic := logic
		t.Run(string(logic), func(t *testing.T) {
			g, err := New(logic, 37)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(41))
			for i := 0; i < 10; i++ {
				for _, p := range [][2]*core.Seed{
					{g.Sat(), g.Sat()},
					{g.Unsat(), g.Unsat()},
					{g.Sat(), g.Unsat()},
				} {
					fused, err := core.Concat(p[0], p[1], rng)
					if err != nil {
						t.Fatalf("concat: %v", err)
					}
					requireClean(t, fused.Script, "concat "+fused.Mode.String())
				}
			}
		})
	}
}
