package gen

import (
	"math/rand"
	"testing"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

func TestAllLogicsProduceValidSeeds(t *testing.T) {
	for _, logic := range AllLogics {
		logic := logic
		t.Run(string(logic), func(t *testing.T) {
			g, err := New(logic, 42)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 50; i++ {
				sat := g.Sat()
				if sat.Status != core.StatusSat || sat.Witness == nil {
					t.Fatal("bad sat seed")
				}
				// Witness must satisfy every quantifier-free assert.
				for _, a := range sat.Script.Asserts() {
					if ast.HasQuantifier(a) {
						continue
					}
					ok, err := eval.Bool(a, sat.Witness)
					if err != nil || !ok {
						t.Fatalf("witness fails on %s: %v\n%s",
							ast.Print(a), err, smtlib.Print(sat.Script))
					}
				}
				unsat := g.Unsat()
				if unsat.Status != core.StatusUnsat {
					t.Fatal("bad unsat seed")
				}
				if len(unsat.Script.Asserts()) == 0 {
					t.Fatal("empty unsat seed")
				}
			}
		})
	}
}

func TestSeedsRespectLogicFragment(t *testing.T) {
	cases := []struct {
		logic     Logic
		quantOK   bool
		stringsOK bool
	}{
		{QFLIA, false, false},
		{QFLRA, false, false},
		{QFNRA, false, false},
		{QFNIA, false, false},
		{QFS, false, true},
		{QFSLIA, false, true},
		{StringFuzz, false, true},
		{LIA, true, false},
		{LRA, true, false},
		{NRA, true, false},
	}
	for _, c := range cases {
		g, err := New(c.logic, 7)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			for _, seed := range []*core.Seed{g.Sat(), g.Unsat()} {
				for _, a := range seed.Script.Asserts() {
					if !c.quantOK && ast.HasQuantifier(a) {
						t.Fatalf("%s: quantifier in QF seed: %s", c.logic, ast.Print(a))
					}
					hasStr := false
					ast.Walk(a, func(tm ast.Term) bool {
						if tm.Sort() == ast.SortString {
							hasStr = true
						}
						return true
					})
					if !c.stringsOK && hasStr {
						t.Fatalf("%s: string term in arithmetic seed", c.logic)
					}
				}
			}
		}
	}
}

func TestLinearLogicsAreLinear(t *testing.T) {
	for _, logic := range []Logic{QFLIA, QFLRA, LIA, LRA} {
		g, _ := New(logic, 3)
		for i := 0; i < 40; i++ {
			for _, seed := range []*core.Seed{g.Sat(), g.Unsat()} {
				inferred := smtlib.InferLogic(seed.Script)
				if inferred[0] == 'N' || (len(inferred) > 3 && inferred[3] == 'N') {
					t.Fatalf("%s seed inferred as %s:\n%s", logic, inferred, smtlib.Print(seed.Script))
				}
			}
		}
	}
}

func TestUnsatSeedsAreUnsat(t *testing.T) {
	// The reference solver must never find a model for an unsat seed
	// (unknown is acceptable for hard fragments).
	s := solver.NewReference()
	for _, logic := range AllLogics {
		g, _ := New(logic, 99)
		for i := 0; i < 15; i++ {
			seed := g.Unsat()
			out := s.SolveScript(seed.Script)
			if out.Result == solver.ResSat {
				t.Fatalf("%s: unsat seed decided sat:\n%s", logic, smtlib.Print(seed.Script))
			}
		}
	}
}

func TestSatSeedsMostlySolvable(t *testing.T) {
	// Sat seeds should usually be decided sat by the reference solver
	// (they are its regression diet); always at least not unsat.
	s := solver.NewReference()
	for _, logic := range []Logic{QFLIA, QFLRA, QFS, QFSLIA} {
		g, _ := New(logic, 5)
		solved := 0
		const n = 25
		for i := 0; i < n; i++ {
			seed := g.Sat()
			out := s.SolveScript(seed.Script)
			if out.Result == solver.ResUnsat {
				t.Fatalf("%s: sat seed decided unsat:\n%s", logic, smtlib.Print(seed.Script))
			}
			if out.Result == solver.ResSat {
				solved++
			}
		}
		if solved < n/2 {
			t.Errorf("%s: only %d/%d sat seeds decided", logic, solved, n)
		}
	}
}

func TestSeedsAreFusable(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, logic := range AllLogics {
		g, _ := New(logic, 11)
		okCount := 0
		for i := 0; i < 20; i++ {
			s1, s2 := g.Sat(), g.Sat()
			if _, err := core.Fuse(s1, s2, rng, core.Options{}); err == nil {
				okCount++
			}
			u1, u2 := g.Unsat(), g.Unsat()
			if _, err := core.Fuse(u1, u2, rng, core.Options{}); err == nil {
				okCount++
			}
		}
		if okCount < 30 {
			t.Errorf("%s: only %d/40 fusions succeeded", logic, okCount)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := New(QFNRA, 77)
	g2, _ := New(QFNRA, 77)
	for i := 0; i < 10; i++ {
		a := smtlib.Print(g1.Sat().Script)
		b := smtlib.Print(g2.Sat().Script)
		if a != b {
			t.Fatalf("generators with equal seeds diverged:\n%s\nvs\n%s", a, b)
		}
	}
}

func TestSeedScriptsReparse(t *testing.T) {
	for _, logic := range AllLogics {
		g, _ := New(logic, 8)
		for i := 0; i < 20; i++ {
			for _, seed := range []*core.Seed{g.Sat(), g.Unsat()} {
				txt := smtlib.Print(seed.Script)
				if _, err := smtlib.ParseScript(txt); err != nil {
					t.Fatalf("%s seed does not reparse: %v\n%s", logic, err, txt)
				}
			}
		}
	}
}

func TestUnknownLogicRejected(t *testing.T) {
	if _, err := New("QF_BV", 1); err == nil {
		t.Error("unsupported logic accepted")
	}
}

func TestQuantifiedLogicsProduceQuantifiers(t *testing.T) {
	g, _ := New(NRA, 21)
	saw := false
	for i := 0; i < 60 && !saw; i++ {
		for _, a := range g.Sat().Script.Asserts() {
			if ast.HasQuantifier(a) {
				saw = true
			}
		}
	}
	if !saw {
		t.Error("NRA generator never produced a quantifier in 60 seeds")
	}
}
