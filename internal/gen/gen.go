// Package gen generates seed formulas of known satisfiability for
// every logic in the paper's evaluation (Figure 7): LIA, LRA, NRA,
// QF_LIA, QF_LRA, QF_NRA, QF_NIA, QF_S, QF_SLIA, and a StringFuzz-style
// QF_S generator. It substitutes for the SMT-LIB and StringFuzz
// benchmark suites: satisfiable seeds are generated model-first (sample
// a witness, emit only atoms that hold under it), unsatisfiable seeds
// embed a contradiction core under satisfiable noise — so every seed's
// label is ground truth by construction, and each SAT seed carries its
// witness for fusion-function selection.
package gen

import (
	"fmt"
	"math/big"
	"math/rand"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/smtlib"
)

// Logic identifies a seed family.
type Logic string

// The supported logics (the paper's Figure 7 benchmark rows).
const (
	LIA        Logic = "LIA"
	LRA        Logic = "LRA"
	NRA        Logic = "NRA"
	QFLIA      Logic = "QF_LIA"
	QFLRA      Logic = "QF_LRA"
	QFNRA      Logic = "QF_NRA"
	QFNIA      Logic = "QF_NIA"
	QFS        Logic = "QF_S"
	QFSLIA     Logic = "QF_SLIA"
	StringFuzz Logic = "StringFuzz"
)

// AllLogics lists every supported logic in Figure 7 order.
var AllLogics = []Logic{LIA, LRA, NRA, QFLIA, QFLRA, QFNRA, QFNIA, QFS, QFSLIA, StringFuzz}

type traits struct {
	quantified bool
	nonlinear  bool
	sort       ast.Sort // main numeric sort (Int or Real); strings imply SortString
	strings    bool
	ints       bool // string logics: integer operations allowed
}

func traitsOf(l Logic) (traits, error) {
	switch l {
	case LIA:
		return traits{quantified: true, sort: ast.SortInt}, nil
	case LRA:
		return traits{quantified: true, sort: ast.SortReal}, nil
	case NRA:
		return traits{quantified: true, nonlinear: true, sort: ast.SortReal}, nil
	case QFLIA:
		return traits{sort: ast.SortInt}, nil
	case QFLRA:
		return traits{sort: ast.SortReal}, nil
	case QFNRA:
		return traits{nonlinear: true, sort: ast.SortReal}, nil
	case QFNIA:
		return traits{nonlinear: true, sort: ast.SortInt}, nil
	case QFS, StringFuzz:
		return traits{strings: true, sort: ast.SortString}, nil
	case QFSLIA:
		return traits{strings: true, ints: true, sort: ast.SortString}, nil
	default:
		return traits{}, fmt.Errorf("gen: unknown logic %q", l)
	}
}

// Generator produces seeds for one logic.
type Generator struct {
	logic Logic
	tr    traits
	rng   *rand.Rand
	n     int // serial for variable naming
}

// New returns a generator for the logic with a deterministic stream.
func New(logic Logic, seed int64) (*Generator, error) {
	tr, err := traitsOf(logic)
	if err != nil {
		return nil, err
	}
	return &Generator{logic: logic, tr: tr, rng: rand.New(rand.NewSource(seed))}, nil
}

// Logic returns the generator's logic.
func (g *Generator) Logic() Logic { return g.logic }

// Generate produces a seed with the given status.
func (g *Generator) Generate(status core.Status) *core.Seed {
	if status == core.StatusSat {
		return g.Sat()
	}
	return g.Unsat()
}

// Sat generates a satisfiable seed with its witness model. The witness
// is validated by evaluation; generation retries on the (never
// expected) validation failure and panics if it persists, since a
// mislabeled seed would corrupt the fuzzing oracle.
func (g *Generator) Sat() *core.Seed {
	for attempt := 0; attempt < 10; attempt++ {
		seed := g.satOnce()
		if validate(seed) {
			return seed
		}
	}
	panic(fmt.Sprintf("gen: %s SAT seed failed witness validation repeatedly", g.logic))
}

func validate(seed *core.Seed) bool {
	for _, a := range seed.Script.Asserts() {
		if ast.HasQuantifier(a) {
			continue // quantified conjuncts are valid-by-template
		}
		ok, err := eval.Bool(a, seed.Witness)
		if err != nil || !ok {
			return false
		}
	}
	return true
}

func (g *Generator) satOnce() *core.Seed {
	if g.tr.strings {
		return g.satStrings()
	}
	return g.satArith()
}

// Unsat generates an unsatisfiable seed: a contradiction core plus
// satisfiable noise.
func (g *Generator) Unsat() *core.Seed {
	if g.tr.strings {
		return g.unsatStrings()
	}
	return g.unsatArith()
}

// --- shared helpers ---

func (g *Generator) fresh(prefix string) string {
	g.n++
	return fmt.Sprintf("%s%d", prefix, g.n)
}

func (g *Generator) script(decls []*smtlib.DeclareFun, asserts []ast.Term) *smtlib.Script {
	logic := string(g.logic)
	if g.logic == StringFuzz {
		// StringFuzz is a generator family, not an SMT-LIB logic name;
		// its scripts declare the standard string logic.
		logic = string(QFS)
	}
	return smtlib.NewScript(logic, decls, asserts)
}

// randInt samples a small integer value.
func (g *Generator) randInt() *big.Int {
	return big.NewInt(int64(g.rng.Intn(41) - 20))
}

// randRat samples a small rational value.
func (g *Generator) randRat() *big.Rat {
	den := int64(1 + g.rng.Intn(4))
	num := int64(g.rng.Intn(41) - 20)
	return big.NewRat(num, den)
}

func (g *Generator) numLit(v *big.Rat) ast.Term {
	if g.tr.sort == ast.SortInt {
		return ast.IntBig(new(big.Int).Quo(v.Num(), v.Denom()))
	}
	return ast.RealBig(v)
}

const strAlphabet = "abc01"

func (g *Generator) randStr(maxLen int) string {
	n := g.rng.Intn(maxLen + 1)
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = strAlphabet[g.rng.Intn(len(strAlphabet))]
	}
	return string(buf)
}
