package gen

import (
	"math/rand"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/smtlib"
)

// TestDeclaredLogicCoversInferred round-trips every generator logic
// through InferLogic: the logic a seed declares must be at least as
// strong as the logic its terms actually require, for both sat and
// unsat seeds.
func TestDeclaredLogicCoversInferred(t *testing.T) {
	for _, logic := range AllLogics {
		logic := logic
		t.Run(string(logic), func(t *testing.T) {
			g, err := New(logic, 7)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 40; i++ {
				for _, seed := range []*core.Seed{g.Sat(), g.Unsat()} {
					declared, ok := analysis.ParseLogicName(seed.Script.Logic())
					if !ok {
						t.Fatalf("seed declares unrecognized logic %q", seed.Script.Logic())
					}
					inferredName := smtlib.InferLogic(seed.Script)
					inferred, ok := analysis.ParseLogicName(inferredName)
					if !ok {
						t.Fatalf("InferLogic produced unrecognized name %q", inferredName)
					}
					if !declared.Covers(inferred) {
						t.Fatalf("declared logic %q does not cover inferred %q:\n%s",
							seed.Script.Logic(), inferredName, smtlib.Print(seed.Script))
					}
				}
			}
		})
	}
}

// TestFusedLogicCoversAncestors checks that a fused script's inferred
// logic is at least as strong as what each ancestor's terms require —
// fusion may strengthen the logic (e.g. introducing nonlinear fusion
// functions under QF_LIA) but must never drop a theory an ancestor
// uses.
func TestFusedLogicCoversAncestors(t *testing.T) {
	for _, logic := range AllLogics {
		logic := logic
		t.Run(string(logic), func(t *testing.T) {
			g, err := New(logic, 11)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(13))
			fusedPairs := 0
			for i := 0; i < 40 && fusedPairs < 10; i++ {
				pairs := [][2]*core.Seed{
					{g.Sat(), g.Sat()},
					{g.Unsat(), g.Unsat()},
					{g.Sat(), g.Unsat()},
				}
				for _, p := range pairs {
					fused, err := core.Fuse(p[0], p[1], rng, core.Options{})
					if err != nil {
						continue // no fusable pair for this combination
					}
					fusedPairs++
					fusedFeat, ok := analysis.ParseLogicName(fused.Script.Logic())
					if !ok {
						t.Fatalf("fused script declares unrecognized logic %q", fused.Script.Logic())
					}
					for j, anc := range p {
						ancFeat, ok := analysis.ParseLogicName(smtlib.InferLogic(anc.Script))
						if !ok {
							t.Fatalf("ancestor %d: unrecognized inferred logic", j)
						}
						if !fusedFeat.Covers(ancFeat) {
							t.Fatalf("fused logic %q does not cover ancestor %d inferred %q",
								fused.Script.Logic(), j, smtlib.InferLogic(anc.Script))
						}
					}
				}
			}
			if fusedPairs == 0 {
				t.Fatalf("no fusable pairs for %s", logic)
			}
		})
	}
}
