package gen

import (
	"math/big"

	"repro/internal/ast"
	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/regex"
	"repro/internal/smtlib"
)

// satStrings builds a satisfiable string-logic seed model-first.
func (g *Generator) satStrings() *core.Seed {
	nVars := 2 + g.rng.Intn(3)
	decls := make([]*smtlib.DeclareFun, 0, nVars+2)
	witness := eval.Model{}
	var vars []*ast.Var
	for i := 0; i < nVars; i++ {
		name := g.fresh("s")
		decls = append(decls, &smtlib.DeclareFun{Name: name, Sort: ast.SortString})
		vars = append(vars, ast.NewVar(name, ast.SortString))
		witness[name] = eval.StrV(g.randStr(4))
	}
	var intVars []*ast.Var
	if g.tr.ints {
		for i := 0; i < 1+g.rng.Intn(2); i++ {
			name := g.fresh("n")
			decls = append(decls, &smtlib.DeclareFun{Name: name, Sort: ast.SortInt})
			iv := ast.NewVar(name, ast.SortInt)
			intVars = append(intVars, iv)
			witness[name] = eval.IntV{V: g.randInt()}
		}
	}

	nAtoms := 2 + g.rng.Intn(4)
	var asserts []ast.Term
	for i := 0; i < nAtoms; i++ {
		asserts = append(asserts, g.trueStringAtom(vars, intVars, witness))
	}

	// Boolean scaffolding (the paper's Figure 2 φ2 shape).
	if g.rng.Intn(3) == 0 {
		vName := g.fresh("b")
		decls = append(decls, &smtlib.DeclareFun{Name: vName, Sort: ast.SortBool})
		bv := ast.NewVar(vName, ast.SortBool)
		// trueStringAtom holds under the witness, so v := ¬atom is false
		// and (ite v false atom) evaluates to atom = true — exactly the
		// paper's φ2 pattern.
		atom := g.trueStringAtom(vars, intVars, witness)
		witness[vName] = eval.BoolV(false)
		asserts = append(asserts, ast.Eq(bv, ast.Not(atom)))
		asserts = append(asserts, ast.Ite(bv, ast.False, atom))
	}

	return &core.Seed{Script: g.script(decls, asserts), Status: core.StatusSat, Witness: witness}
}

// trueStringAtom builds a random string atom that holds under the
// witness.
func (g *Generator) trueStringAtom(vars, intVars []*ast.Var, witness eval.Model) ast.Term {
	t := g.stringTerm(vars, 2)
	v, err := eval.Term(t, witness)
	if err != nil {
		return ast.True
	}
	s := string(v.(eval.StrV))
	kinds := 7
	if g.logic == StringFuzz {
		kinds = 9 // bias toward regex-heavy shapes
	}
	switch g.rng.Intn(kinds) {
	case 0: // t = "literal value"
		return ast.Eq(t, ast.Str(s))
	case 1: // prefix of t
		cut := 0
		if len(s) > 0 {
			cut = g.rng.Intn(len(s) + 1)
		}
		return ast.MustApp(ast.OpStrPrefixOf, ast.Str(s[:cut]), t)
	case 2: // suffix of t
		cut := len(s)
		if len(s) > 0 {
			cut = g.rng.Intn(len(s) + 1)
		}
		return ast.MustApp(ast.OpStrSuffixOf, ast.Str(s[cut:]), t)
	case 3: // contains
		if len(s) == 0 {
			return ast.MustApp(ast.OpStrContains, t, ast.Str(""))
		}
		i := g.rng.Intn(len(s))
		j := i + g.rng.Intn(len(s)-i)
		return ast.MustApp(ast.OpStrContains, t, ast.Str(s[i:j+1]))
	case 4: // length relation
		ln := ast.MustApp(ast.OpStrLen, t)
		if len(intVars) > 0 && g.rng.Intn(2) == 0 {
			// Tie an integer variable to the length: n ≤ len(t) oriented
			// by the witness.
			iv := intVars[g.rng.Intn(len(intVars))]
			nv := witness[iv.Name].(eval.IntV).V
			if nv.Cmp(big.NewInt(int64(len(s)))) <= 0 {
				return ast.Le(iv, ln)
			}
			return ast.Gt(iv, ln)
		}
		off := int64(g.rng.Intn(3))
		if g.rng.Intn(2) == 0 {
			return ast.Le(ln, ast.Int(int64(len(s))+off))
		}
		return ast.Ge(ln, ast.Int(int64(len(s))-off))
	case 5: // str.to_int / indexof facts
		val := eval.StrToInt(s)
		return ast.Eq(ast.MustApp(ast.OpStrToInt, t), ast.IntBig(val))
	case 6: // equality chain with concat of a split
		if len(s) == 0 {
			return ast.Eq(t, ast.Str(""))
		}
		cut := g.rng.Intn(len(s) + 1)
		return ast.Eq(t, ast.MustApp(ast.OpStrConcat, ast.Str(s[:cut]), ast.Str(s[cut:])))
	default: // regex membership, oriented by matching
		re, reTerm := g.randRegex(s)
		matches := regex.Match(re, s)
		atom := ast.MustApp(ast.OpStrInRe, t, reTerm)
		if matches {
			return atom
		}
		return ast.Not(atom)
	}
}

// randRegex builds a random regex term plus its semantic value. The
// string s guides one of the constructions so positive memberships are
// common.
func (g *Generator) randRegex(s string) (regex.Regex, ast.Term) {
	toRe := func(lit string) (regex.Regex, ast.Term) {
		return regex.Lit(lit), ast.MustApp(ast.OpStrToRe, ast.Str(lit))
	}
	switch g.rng.Intn(5) {
	case 0: // (re.* (str.to_re unit)) where s is a repetition when possible
		unit := g.randStr(2)
		if len(s) > 0 && g.rng.Intn(2) == 0 {
			// Use a prefix unit that may tile s.
			unit = s[:1+g.rng.Intn(len(s))]
		}
		if unit == "" {
			unit = "a"
		}
		r, t := toRe(unit)
		return regex.Star(r), ast.MustApp(ast.OpReStar, t)
	case 1: // union with the exact literal
		r1, t1 := toRe(s)
		r2, t2 := toRe(g.randStr(3))
		return regex.Union(r1, r2), ast.MustApp(ast.OpReUnion, t1, t2)
	case 2: // (re.+ (re.range lo hi))
		lo, hi := "a", "c"
		r := regex.Plus(regex.Range(lo[0], hi[0]))
		t := ast.MustApp(ast.OpRePlus, ast.MustApp(ast.OpReRange, ast.Str(lo), ast.Str(hi)))
		return r, t
	case 3: // concat of opt and literal
		r1, t1 := toRe(g.randStr(2))
		r2, t2 := toRe(g.randStr(2))
		r := regex.Concat(regex.Opt(r1), r2)
		t := ast.MustApp(ast.OpReConcat, ast.MustApp(ast.OpReOpt, t1), t2)
		return r, t
	default: // allchar*  restricted: (re.++ re.allchar re.all) = nonempty
		r := regex.Concat(regex.AnyChar(), regex.All())
		t := ast.MustApp(ast.OpReConcat, ast.MustApp(ast.OpReAllChar), ast.MustApp(ast.OpReAll))
		return r, t
	}
}

// stringTerm builds a random String-sorted term.
func (g *Generator) stringTerm(vars []*ast.Var, depth int) ast.Term {
	if depth == 0 || g.rng.Intn(3) == 0 {
		if g.rng.Intn(3) < 2 {
			return vars[g.rng.Intn(len(vars))]
		}
		return ast.Str(g.randStr(3))
	}
	a := g.stringTerm(vars, depth-1)
	b := g.stringTerm(vars, depth-1)
	switch g.rng.Intn(5) {
	case 0, 1:
		return ast.MustApp(ast.OpStrConcat, a, b)
	case 2:
		return ast.MustApp(ast.OpStrReplace, a, b, ast.Str(g.randStr(2)))
	case 3:
		return ast.MustApp(ast.OpStrSubstr, a, ast.Int(int64(g.rng.Intn(3))), ast.Int(int64(1+g.rng.Intn(3))))
	default:
		return ast.MustApp(ast.OpStrAt, a, ast.Int(int64(g.rng.Intn(4))))
	}
}

// unsatStrings builds an unsatisfiable string seed.
func (g *Generator) unsatStrings() *core.Seed {
	nVars := 2 + g.rng.Intn(2)
	decls := make([]*smtlib.DeclareFun, 0, nVars)
	noiseWitness := eval.Model{}
	var vars []*ast.Var
	for i := 0; i < nVars; i++ {
		name := g.fresh("t")
		decls = append(decls, &smtlib.DeclareFun{Name: name, Sort: ast.SortString})
		vars = append(vars, ast.NewVar(name, ast.SortString))
		noiseWitness[name] = eval.StrV(g.randStr(4))
	}
	if g.tr.ints {
		name := g.fresh("m")
		decls = append(decls, &smtlib.DeclareFun{Name: name, Sort: ast.SortInt})
		noiseWitness[name] = eval.IntV{V: g.randInt()}
	}

	asserts := g.stringContradiction(vars)
	for i := 0; i < g.rng.Intn(3); i++ {
		asserts = append(asserts, g.trueStringAtom(vars, nil, noiseWitness))
	}
	g.rng.Shuffle(len(asserts), func(i, j int) { asserts[i], asserts[j] = asserts[j], asserts[i] })

	return &core.Seed{Script: g.script(decls, asserts), Status: core.StatusUnsat}
}

func (g *Generator) stringContradiction(vars []*ast.Var) []ast.Term {
	a := vars[g.rng.Intn(len(vars))]
	b := vars[g.rng.Intn(len(vars))]
	lit := g.randStr(3)
	switch g.rng.Intn(6) {
	case 0: // a = a ++ "x" (length conflict)
		return []ast.Term{ast.Eq(a, ast.MustApp(ast.OpStrConcat, a, ast.Str("x")))}
	case 1: // a = lit ∧ a = lit' with lit ≠ lit'
		other := lit + "z"
		return []ast.Term{ast.Eq(a, ast.Str(lit)), ast.Eq(a, ast.Str(other))}
	case 2: // a ∈ (unit)+ ∧ len(a) < minlen(unit)
		unit := "ab" + g.randStr(1)
		re := ast.MustApp(ast.OpRePlus, ast.MustApp(ast.OpStrToRe, ast.Str(unit)))
		return []ast.Term{
			ast.MustApp(ast.OpStrInRe, a, re),
			ast.Lt(ast.MustApp(ast.OpStrLen, a), ast.Int(int64(len(unit)))),
		}
	case 3: // prefixof lit a ∧ len(a) < |lit|
		pre := "ab" + lit
		return []ast.Term{
			ast.MustApp(ast.OpStrPrefixOf, ast.Str(pre), a),
			ast.Lt(ast.MustApp(ast.OpStrLen, a), ast.Int(int64(len(pre)))),
		}
	case 4: // str.to_int of "" against its defined value (ground false
		// unless the seed's noise hides it syntactically): use variable
		// form a = "" ∧ str.to_int a = 0.
		return []ast.Term{
			ast.Eq(a, ast.Str("")),
			ast.Eq(ast.MustApp(ast.OpStrToInt, a), ast.Int(0)),
		}
	default: // contains(a, b-as-superstring) both directions with strict lengths
		return []ast.Term{
			ast.MustApp(ast.OpStrContains, a, b),
			ast.Gt(ast.MustApp(ast.OpStrLen, b), ast.MustApp(ast.OpStrLen, a)),
		}
	}
}
