package smtlib

import "repro/internal/ast"

// InferLogic computes the weakest standard SMT-LIB logic name covering
// the script's asserts: quantifier prefix (QF_ or none), linearity
// (L/N) and theory letters (IA, RA, IRA, S, SLIA).
func InferLogic(s *Script) string {
	hasQuant := false
	hasInt := false
	hasReal := false
	hasString := false
	nonlinear := false

	for _, d := range s.Declarations() {
		switch d.Sort {
		case ast.SortInt:
			hasInt = true
		case ast.SortReal:
			hasReal = true
		case ast.SortString:
			hasString = true
		}
	}

	var scan func(t ast.Term)
	scan = func(t ast.Term) {
		ast.Walk(t, func(n ast.Term) bool {
			switch x := n.(type) {
			case *ast.Quant:
				hasQuant = true
			case *ast.App:
				switch x.Sort() {
				case ast.SortInt:
					hasInt = true
				case ast.SortReal:
					hasReal = true
				case ast.SortString:
					hasString = true
				}
				switch x.Op {
				case ast.OpMul:
					nonConst := 0
					for _, a := range x.Args {
						if !isConstTerm(a) {
							nonConst++
						}
					}
					if nonConst > 1 {
						nonlinear = true
					}
				case ast.OpRealDiv, ast.OpIntDiv, ast.OpMod:
					if len(x.Args) > 1 && !isConstTerm(x.Args[1]) {
						nonlinear = true
					}
				}
			case *ast.IntLit:
				hasInt = true
			case *ast.RealLit:
				hasReal = true
			case *ast.StrLit:
				hasString = true
			}
			return true
		})
	}
	for _, a := range s.Asserts() {
		scan(a)
	}

	logic := ""
	if !hasQuant {
		logic = "QF_"
	}
	switch {
	case hasString && hasInt:
		return logic + "SLIA"
	case hasString:
		return logic + "S"
	}
	if nonlinear {
		logic += "N"
	} else {
		logic += "L"
	}
	switch {
	case hasInt && hasReal:
		return logic + "IRA"
	case hasReal:
		return logic + "RA"
	default:
		return logic + "IA"
	}
}

func isConstTerm(t ast.Term) bool {
	switch n := t.(type) {
	case *ast.IntLit, *ast.RealLit, *ast.StrLit, *ast.BoolLit:
		return true
	case *ast.App:
		// SMT-LIB has no negative or non-integer numerals: -3 prints
		// as (- 3) and 2/3 as (/ 2.0 3.0), and both parse back as
		// applications, but they still denote constants, so a scalar
		// multiple by either stays linear.
		if n.Op == ast.OpNeg && len(n.Args) == 1 {
			return isConstTerm(n.Args[0])
		}
		if n.Op == ast.OpRealDiv && len(n.Args) == 2 {
			return isConstTerm(n.Args[0]) && isConstTerm(n.Args[1])
		}
	}
	return false
}
