package smtlib

// sexpr is the untyped s-expression layer between the lexer and the
// elaborator.
type sexpr interface {
	pos() (line, col int)
}

type atom struct {
	tok token
}

func (a *atom) pos() (int, int) { return a.tok.line, a.tok.col }

type list struct {
	items     []sexpr
	line, col int
}

func (l *list) pos() (int, int) { return l.line, l.col }

type sexprParser struct {
	lx     *lexer
	peeked *token
}

func newSexprParser(src string) *sexprParser { return &sexprParser{lx: newLexer(src)} }

func (p *sexprParser) nextToken() (token, error) {
	if p.peeked != nil {
		t := *p.peeked
		p.peeked = nil
		return t, nil
	}
	return p.lx.next()
}

func (p *sexprParser) peekToken() (token, error) {
	if p.peeked == nil {
		t, err := p.lx.next()
		if err != nil {
			return token{}, err
		}
		p.peeked = &t
	}
	return *p.peeked, nil
}

// parse returns the next s-expression, or nil at EOF.
func (p *sexprParser) parse() (sexpr, error) {
	t, err := p.nextToken()
	if err != nil {
		return nil, err
	}
	switch t.kind {
	case tokEOF:
		return nil, nil
	case tokRParen:
		return nil, errAt(t.line, t.col, "unexpected )")
	case tokLParen:
		l := &list{line: t.line, col: t.col}
		for {
			nt, err := p.peekToken()
			if err != nil {
				return nil, err
			}
			if nt.kind == tokRParen {
				p.peeked = nil
				return l, nil
			}
			if nt.kind == tokEOF {
				return nil, errAt(t.line, t.col, "unterminated list")
			}
			item, err := p.parse()
			if err != nil {
				return nil, err
			}
			l.items = append(l.items, item)
		}
	default:
		return &atom{tok: t}, nil
	}
}
