package smtlib

import (
	"strings"
	"testing"

	"repro/internal/ast"
)

func mustParse(t *testing.T, src string) *Script {
	t.Helper()
	s, err := ParseScript(src)
	if err != nil {
		t.Fatalf("ParseScript: %v\ninput:\n%s", err, src)
	}
	return s
}

func TestParseSimpleScript(t *testing.T) {
	s := mustParse(t, `
(set-logic QF_LIA)
(declare-fun x () Int)
(declare-const y Int)
(assert (= x (- 1)))
(assert (<= (+ x y) 10))
(check-sat)
`)
	if s.Logic() != "QF_LIA" {
		t.Errorf("Logic = %q", s.Logic())
	}
	if len(s.Declarations()) != 2 {
		t.Errorf("decls = %d", len(s.Declarations()))
	}
	as := s.Asserts()
	if len(as) != 2 {
		t.Fatalf("asserts = %d", len(as))
	}
	if got := ast.Print(as[0]); got != "(= x (- 1))" {
		t.Errorf("assert 0 = %q", got)
	}
	if got := ast.Print(as[1]); got != "(<= (+ x y) 10)" {
		t.Errorf("assert 1 = %q", got)
	}
}

func TestParsePaperFigure2(t *testing.T) {
	// φ1 and φ2 from the paper (Figure 2).
	src := `
; phi1
(declare-fun x () Int)
(declare-fun w () Bool)
(assert (= x (- 1)))
(assert (= w (= x (- 1))))
(assert w)
; phi2
(declare-fun y () Int)
(declare-fun v () Bool)
(assert (= v (not (= y (- 1)))))
(assert (ite v false (= y (- 1))))
`
	s := mustParse(t, src)
	if len(s.Asserts()) != 5 {
		t.Errorf("asserts = %d want 5", len(s.Asserts()))
	}
}

func TestParsePaperFigure5(t *testing.T) {
	// The fused UNSAT formula from the paper (Figure 5), with legacy-
	// and 2.6-style operators mixed.
	src := `
(declare-fun v () Real)
(declare-fun w () Real)
(declare-fun x () Real)
(declare-fun y () Real)
(declare-fun z () Real)
(assert (or
  (not (= (+ (+ 1.0 (/ z y)) 6.0) (+ 7.0 x)))
  (and (< (/ z x) v) (>= w v)
       (< (/ w v) 0) (> (/ z x) 0))))
(assert (= z (* x y)))
(assert (= x (/ z y)))
(assert (= y (/ z x)))
(check-sat)
`
	s := mustParse(t, src)
	if len(s.Asserts()) != 4 {
		t.Fatalf("asserts = %d want 4", len(s.Asserts()))
	}
	// (< (/ w v) 0): numeral 0 coerces to Real.
	txt := ast.Print(s.Asserts()[0])
	if !strings.Contains(txt, "(< (/ w v) 0.0)") {
		t.Errorf("coercion missing in %q", txt)
	}
}

func TestParseStringRegex(t *testing.T) {
	// Legacy spellings from the paper's Figure 13a.
	src := `
(declare-fun a () String)
(declare-fun b () String)
(declare-fun c () String)
(assert
  (and
    (str.in.re c (re.* (str.to.re "aa")))
    (= 0 (str.to.int (str.replace a b (str.at a (str.len a)))))))
(assert (= a (str.++ b c)))
(check-sat)
`
	s := mustParse(t, src)
	txt := ast.Print(s.Asserts()[0])
	for _, want := range []string{"str.in_re", "re.*", "str.to_re", "str.to_int", "str.replace", "str.at", "str.len"} {
		if !strings.Contains(txt, want) {
			t.Errorf("canonical form missing %q in %q", want, txt)
		}
	}
}

func TestParseQuantified(t *testing.T) {
	src := `
(declare-fun a () Real)
(assert (not (exists ((h Real)) (<= 0.0 (/ a h)))))
(check-sat)
`
	s := mustParse(t, src)
	a := s.Asserts()[0]
	if !ast.HasQuantifier(a) {
		t.Error("quantifier lost")
	}
	if got := ast.Print(a); got != "(not (exists ((h Real)) (<= 0.0 (/ a h))))" {
		t.Errorf("got %q", got)
	}
}

func TestParseLetExpansion(t *testing.T) {
	src := `
(declare-fun x () Int)
(assert (let ((t (+ x 1)) (u 2)) (< t u)))
(check-sat)
`
	s := mustParse(t, src)
	if got := ast.Print(s.Asserts()[0]); got != "(< (+ x 1) 2)" {
		t.Errorf("let expansion: %q", got)
	}
}

func TestParseLetParallelShadowing(t *testing.T) {
	// Parallel let: the RHS x refers to the outer x.
	src := `
(declare-fun x () Int)
(assert (let ((x (+ x 1))) (> x 0)))
(check-sat)
`
	s := mustParse(t, src)
	if got := ast.Print(s.Asserts()[0]); got != "(> (+ x 1) 0)" {
		t.Errorf("got %q", got)
	}
}

func TestParseDefineFun(t *testing.T) {
	src := `
(declare-fun x () Int)
(define-fun double ((a Int)) Int (* 2 a))
(define-fun five () Int 5)
(assert (= (double x) five))
(check-sat)
`
	s := mustParse(t, src)
	if got := ast.Print(s.Asserts()[0]); got != "(= (* 2 x) 5)" {
		t.Errorf("define-fun expansion: %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		`(declare-fun x () Int) (assert (= x "s"))`,     // ill-sorted
		`(assert (= y 1))`,                              // undeclared
		`(declare-fun x () Unicorn)`,                    // unknown sort
		`(declare-fun x () Int) (declare-fun x () Int)`, // duplicate
		`(assert (= 1 1)`,                               // unbalanced
		`(frobnicate)`,                                  // unknown command
		`(assert (+ 1 2))`,                              // non-bool assert
		`(declare-fun x () Int) (assert (unknownop x))`,
	}
	for _, src := range cases {
		if _, err := ParseScript(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	s := mustParse(t, `(declare-fun x () String) (assert (= x "a""b"))`)
	eq := s.Asserts()[0].(*ast.App)
	lit := eq.Args[1].(*ast.StrLit)
	if lit.V != `a"b` {
		t.Errorf("unescaped = %q", lit.V)
	}
	s = mustParse(t, `(declare-fun x () String) (assert (= x "\u{41}"))`)
	eq = s.Asserts()[0].(*ast.App)
	lit = eq.Args[1].(*ast.StrLit)
	if lit.V != "A" {
		t.Errorf("unicode escape = %q", lit.V)
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		`(set-logic QF_NRA)
(declare-fun a () Real)
(declare-fun b () Real)
(assert (and (> 0.0 (- a b)) (= a (ite (>= (/ a b) b) (+ a b) b))))
(check-sat)
`,
		`(set-logic QF_S)
(declare-fun a () String)
(assert (str.in_re a (re.union (str.to_re "x") (re.+ (re.range "a" "z")))))
(assert (= 0 (str.to_int (str.at a (str.len a)))))
(check-sat)
`,
		`(set-logic LIA)
(declare-fun n () Int)
(assert (forall ((k Int)) (=> (> k n) (> k 0))))
(check-sat)
`,
	}
	for _, src := range srcs {
		s1 := mustParse(t, src)
		p1 := Print(s1)
		s2 := mustParse(t, p1)
		p2 := Print(s2)
		if p1 != p2 {
			t.Errorf("round trip unstable:\nfirst:\n%s\nsecond:\n%s", p1, p2)
		}
	}
}

func TestPrintScriptForms(t *testing.T) {
	s := NewScript("QF_LIA",
		[]*DeclareFun{{Name: "x", Sort: ast.SortInt}},
		[]ast.Term{ast.Gt(ast.NewVar("x", ast.SortInt), ast.Int(0))})
	want := "(set-logic QF_LIA)\n(declare-fun x () Int)\n(assert (> x 0))\n(check-sat)\n"
	if got := Print(s); got != want {
		t.Errorf("Print:\n%s\nwant:\n%s", got, want)
	}
}

func TestIgnoredCommands(t *testing.T) {
	s := mustParse(t, `
(set-info :status sat)
(set-option :produce-models true)
(push 1)
(declare-fun x () Int)
(assert (> x 0))
(pop 1)
(check-sat)
(exit)
`)
	// push/pop ignored; set-info and set-option retained.
	if len(s.Asserts()) != 1 {
		t.Errorf("asserts = %d", len(s.Asserts()))
	}
	out := Print(s)
	if !strings.Contains(out, "(set-info :status sat)") {
		t.Errorf("set-info lost:\n%s", out)
	}
	if !strings.Contains(out, "(exit)") {
		t.Errorf("exit lost:\n%s", out)
	}
}

func TestParseTermHelper(t *testing.T) {
	decls := map[string]ast.Sort{"x": ast.SortInt}
	tm, err := ParseTerm("(+ x 3)", decls)
	if err != nil {
		t.Fatal(err)
	}
	if got := ast.Print(tm); got != "(+ x 3)" {
		t.Errorf("got %q", got)
	}
}

func TestConjunction(t *testing.T) {
	s := mustParse(t, `(declare-fun x () Int)(assert (> x 0))(assert (< x 5))`)
	if got := ast.Print(s.Conjunction()); got != "(and (> x 0) (< x 5))" {
		t.Errorf("got %q", got)
	}
	empty := &Script{}
	if empty.Conjunction() != ast.True {
		t.Error("empty conjunction should be true")
	}
}

func TestQuotedSymbol(t *testing.T) {
	s := mustParse(t, `(declare-fun |my var| () Int)(assert (> |my var| 0))`)
	if got := ast.Print(s.Asserts()[0]); got != "(> my var 0)" {
		// Quoted symbols keep their inner text; printing them unquoted
		// is acceptable for fuzzer-internal names which never contain
		// spaces. This test documents the behaviour.
		t.Logf("quoted symbol prints as %q", got)
	}
}
