package smtlib

import "testing"

// FuzzParsePrintRoundTrip checks that printing is a fixpoint of
// parsing: any input the parser accepts must print to a script that
// re-parses, and the second print must be byte-identical to the first.
// This is the property the reproducer pipeline leans on — bundles store
// printed text and compare replays byte-for-byte.
func FuzzParsePrintRoundTrip(f *testing.F) {
	seeds := []string{
		"(set-logic QF_LIA)\n(declare-fun x () Int)\n(assert (> x 1))\n(check-sat)\n",
		"(set-logic QF_S)\n(declare-fun s () String)\n(assert (str.prefixof s (str.++ s \"ab\")))\n(check-sat)\n",
		"(set-logic QF_NRA)\n(declare-fun a () Real)\n(assert (< (* a a) 0.0))\n(check-sat)\n",
		"(set-logic LIA)\n(declare-fun n () Int)\n(assert (forall ((h Int)) (<= h n)))\n(check-sat)\n",
		"(set-logic QF_LIA)\n(declare-fun p () Bool)\n(declare-fun q () Bool)\n(assert (ite p (and p q) (or (not p) q)))\n(check-sat)\n",
		"(set-logic QF_S)\n(declare-fun s () String)\n(assert (str.in_re s (re.* (str.to_re \"ab\"))))\n(check-sat)\n",
		"(set-logic QF_LRA)\n(declare-fun r () Real)\n(define-fun twice ((v Real)) Real (* 2.0 v))\n(assert (= (twice r) 4.0))\n(check-sat)\n(get-model)\n",
		"(set-logic QF_LIA)\n(declare-fun x () Int)\n(assert (distinct (div x 2) (mod x 2)))\n(check-sat)\n(exit)\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sc, err := ParseScript(src)
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		text := Print(sc)
		sc2, err := ParseScript(text)
		if err != nil {
			t.Fatalf("printed script does not re-parse: %v\n%s", err, text)
		}
		if again := Print(sc2); again != text {
			t.Fatalf("print is not a parse fixpoint:\nfirst:\n%s\nsecond:\n%s", text, again)
		}
	})
}
