package smtlib

import (
	"math/big"

	"repro/internal/ast"
)

// ParseScript parses a complete SMT-LIB script, elaborating all terms.
func ParseScript(src string) (*Script, error) {
	return ParseScriptWith(src, map[string]ast.Sort{})
}

// ParseScriptWith parses a script under ambient declarations — the
// symbol table of an incremental session whose earlier scripts already
// declared functions. Declarations made by this script are added to
// decls, so threading one map through a sequence of calls gives every
// script the session-wide symbol table, exactly like a solver's
// push/pop REPL.
func ParseScriptWith(src string, decls map[string]ast.Sort) (*Script, error) {
	p := newSexprParser(src)
	el := &elaborator{
		vars: decls,
		defs: map[string]*DefineFun{},
	}
	script := &Script{}
	for {
		se, err := p.parse()
		if err != nil {
			return nil, err
		}
		if se == nil {
			return script, nil
		}
		cmd, err := el.command(se)
		if err != nil {
			return nil, err
		}
		if cmd != nil {
			script.Commands = append(script.Commands, cmd)
		}
	}
}

// ParseTerm parses a single term under the given free-variable
// declarations — a convenience for tests and programmatic use.
func ParseTerm(src string, decls map[string]ast.Sort) (ast.Term, error) {
	p := newSexprParser(src)
	se, err := p.parse()
	if err != nil {
		return nil, err
	}
	if se == nil {
		return nil, errAt(1, 1, "empty input")
	}
	el := &elaborator{vars: decls, defs: map[string]*DefineFun{}}
	return el.term(se, nil)
}

// elaborator turns s-expressions into typed commands and terms.
type elaborator struct {
	vars map[string]ast.Sort   // declared zero-ary functions
	defs map[string]*DefineFun // defined functions (macro-expanded)
}

// scope is a linked list of local bindings (let bodies, quantifiers).
type scope struct {
	name   string
	value  ast.Term // bound value (let) or variable itself (quantifier)
	parent *scope
}

func (sc *scope) lookup(name string) (ast.Term, bool) {
	for s := sc; s != nil; s = s.parent {
		if s.name == name {
			return s.value, true
		}
	}
	return nil, false
}

func (el *elaborator) command(se sexpr) (Command, error) {
	l, ok := se.(*list)
	if !ok || len(l.items) == 0 {
		line, col := se.pos()
		return nil, errAt(line, col, "expected a command list")
	}
	head, ok := l.items[0].(*atom)
	if !ok || head.tok.kind != tokSymbol {
		line, col := l.items[0].pos()
		return nil, errAt(line, col, "expected a command name")
	}
	switch head.tok.text {
	case "set-logic":
		name, err := el.symbolArg(l, 1, "logic name")
		if err != nil {
			return nil, err
		}
		return &SetLogic{Logic: name}, nil
	case "set-info", "set-option":
		if len(l.items) < 2 {
			return nil, errAt(l.line, l.col, "%s: missing keyword", head.tok.text)
		}
		kw, _ := l.items[1].(*atom)
		if kw == nil || kw.tok.kind != tokKeyword {
			line, col := l.items[1].pos()
			return nil, errAt(line, col, "%s: expected a keyword", head.tok.text)
		}
		val := ""
		if len(l.items) > 2 {
			val = rawText(l.items[2])
		}
		if head.tok.text == "set-info" {
			return &SetInfo{Keyword: kw.tok.text, Value: val}, nil
		}
		return &SetOption{Keyword: kw.tok.text, Value: val}, nil
	case "declare-fun":
		if len(l.items) != 4 {
			return nil, errAt(l.line, l.col, "declare-fun: want (declare-fun name () Sort)")
		}
		name, err := el.symbolArg(l, 1, "function name")
		if err != nil {
			return nil, err
		}
		params, ok := l.items[2].(*list)
		if !ok || len(params.items) != 0 {
			line, col := l.items[2].pos()
			return nil, errAt(line, col, "declare-fun: only zero-ary functions (variables) are supported")
		}
		sort, err := el.sortArg(l.items[3])
		if err != nil {
			return nil, err
		}
		return el.declare(name, sort, l)
	case "declare-const":
		if len(l.items) != 3 {
			return nil, errAt(l.line, l.col, "declare-const: want (declare-const name Sort)")
		}
		name, err := el.symbolArg(l, 1, "constant name")
		if err != nil {
			return nil, err
		}
		sort, err := el.sortArg(l.items[2])
		if err != nil {
			return nil, err
		}
		return el.declare(name, sort, l)
	case "define-fun":
		return el.defineFun(l)
	case "assert":
		if len(l.items) != 2 {
			return nil, errAt(l.line, l.col, "assert: want exactly one term")
		}
		t, err := el.term(l.items[1], nil)
		if err != nil {
			return nil, err
		}
		if t.Sort() != ast.SortBool {
			line, col := l.items[1].pos()
			return nil, errAt(line, col, "assert: term has sort %v, want Bool", t.Sort())
		}
		return &Assert{Term: t}, nil
	case "check-sat":
		return &CheckSat{}, nil
	case "get-model":
		return &GetModel{}, nil
	case "exit":
		return &Exit{}, nil
	case "push", "pop", "get-info", "get-value", "echo", "reset", "get-unsat-core":
		// Accepted and ignored: these occur in benchmark headers but do
		// not affect a single check-sat pipeline.
		return nil, nil
	default:
		return nil, errAt(l.line, l.col, "unsupported command %q", head.tok.text)
	}
}

func (el *elaborator) declare(name string, sort ast.Sort, l *list) (Command, error) {
	if _, dup := el.vars[name]; dup {
		return nil, errAt(l.line, l.col, "duplicate declaration of %q", name)
	}
	if _, dup := el.defs[name]; dup {
		return nil, errAt(l.line, l.col, "declaration of %q collides with a definition", name)
	}
	el.vars[name] = sort
	return &DeclareFun{Name: name, Sort: sort}, nil
}

func (el *elaborator) defineFun(l *list) (Command, error) {
	if len(l.items) != 5 {
		return nil, errAt(l.line, l.col, "define-fun: want (define-fun name ((p S)...) R body)")
	}
	name, err := el.symbolArg(l, 1, "function name")
	if err != nil {
		return nil, err
	}
	paramList, ok := l.items[2].(*list)
	if !ok {
		line, col := l.items[2].pos()
		return nil, errAt(line, col, "define-fun: expected parameter list")
	}
	var params []ast.SortedVar
	var sc *scope
	for _, p := range paramList.items {
		pl, ok := p.(*list)
		if !ok || len(pl.items) != 2 {
			line, col := p.pos()
			return nil, errAt(line, col, "define-fun: malformed parameter")
		}
		pn, ok := pl.items[0].(*atom)
		if !ok {
			line, col := pl.items[0].pos()
			return nil, errAt(line, col, "define-fun: malformed parameter name")
		}
		ps, err := el.sortArg(pl.items[1])
		if err != nil {
			return nil, err
		}
		params = append(params, ast.SortedVar{Name: pn.tok.text, Sort: ps})
		sc = &scope{name: pn.tok.text, value: ast.NewVar(pn.tok.text, ps), parent: sc}
	}
	result, err := el.sortArg(l.items[3])
	if err != nil {
		return nil, err
	}
	body, err := el.term(l.items[4], sc)
	if err != nil {
		return nil, err
	}
	if body.Sort() != result {
		line, col := l.items[4].pos()
		return nil, errAt(line, col, "define-fun %s: body has sort %v, want %v", name, body.Sort(), result)
	}
	if _, dup := el.vars[name]; dup {
		return nil, errAt(l.line, l.col, "definition of %q collides with a declaration", name)
	}
	def := &DefineFun{Name: name, Params: params, Result: result, Body: body}
	el.defs[name] = def
	return def, nil
}

func (el *elaborator) symbolArg(l *list, i int, what string) (string, error) {
	if len(l.items) <= i {
		return "", errAt(l.line, l.col, "missing %s", what)
	}
	a, ok := l.items[i].(*atom)
	if !ok || a.tok.kind != tokSymbol {
		line, col := l.items[i].pos()
		return "", errAt(line, col, "expected %s", what)
	}
	return a.tok.text, nil
}

func (el *elaborator) sortArg(se sexpr) (ast.Sort, error) {
	a, ok := se.(*atom)
	if !ok {
		// Allow the legacy (RegEx String) spelling.
		if l, isList := se.(*list); isList && len(l.items) == 2 {
			if h, ok := l.items[0].(*atom); ok && h.tok.text == "RegEx" {
				return ast.SortRegLan, nil
			}
		}
		line, col := se.pos()
		return ast.SortInvalid, errAt(line, col, "expected a sort")
	}
	s, ok := ast.SortByName(a.tok.text)
	if !ok {
		return ast.SortInvalid, errAt(a.tok.line, a.tok.col, "unknown sort %q", a.tok.text)
	}
	return s, nil
}

// term elaborates an s-expression into a typed term.
func (el *elaborator) term(se sexpr, sc *scope) (ast.Term, error) {
	switch n := se.(type) {
	case *atom:
		return el.atomTerm(n, sc)
	case *list:
		return el.listTerm(n, sc)
	default:
		line, col := se.pos()
		return nil, errAt(line, col, "expected a term")
	}
}

func (el *elaborator) atomTerm(a *atom, sc *scope) (ast.Term, error) {
	switch a.tok.kind {
	case tokNumeral:
		v, ok := new(big.Int).SetString(a.tok.text, 10)
		if !ok {
			return nil, errAt(a.tok.line, a.tok.col, "malformed numeral %q", a.tok.text)
		}
		return ast.IntBig(v), nil
	case tokDecimal:
		v, ok := new(big.Rat).SetString(a.tok.text)
		if !ok {
			return nil, errAt(a.tok.line, a.tok.col, "malformed decimal %q", a.tok.text)
		}
		return ast.RealBig(v), nil
	case tokString:
		return ast.Str(a.tok.text), nil
	case tokSymbol:
		name := a.tok.text
		switch name {
		case "true":
			return ast.True, nil
		case "false":
			return ast.False, nil
		}
		if t, ok := sc.lookup(name); ok {
			return t, nil
		}
		if s, ok := el.vars[name]; ok {
			return ast.NewVar(name, s), nil
		}
		if def, ok := el.defs[name]; ok && len(def.Params) == 0 {
			return def.Body, nil
		}
		// Zero-ary builtin constants (re.allchar, re.none, re.all).
		if op, ok := ast.OpByName(name, 0); ok {
			return ast.NewApp(op)
		}
		return nil, errAt(a.tok.line, a.tok.col, "unknown symbol %q", name)
	default:
		return nil, errAt(a.tok.line, a.tok.col, "unexpected token %v in term", a.tok)
	}
}

func (el *elaborator) listTerm(l *list, sc *scope) (ast.Term, error) {
	if len(l.items) == 0 {
		return nil, errAt(l.line, l.col, "empty application")
	}
	head, ok := l.items[0].(*atom)
	if !ok || head.tok.kind != tokSymbol {
		line, col := l.items[0].pos()
		return nil, errAt(line, col, "expected an operator symbol")
	}
	switch head.tok.text {
	case "let":
		return el.letTerm(l, sc)
	case "forall", "exists":
		return el.quantTerm(l, sc, head.tok.text == "forall")
	}

	args := make([]ast.Term, 0, len(l.items)-1)
	for _, item := range l.items[1:] {
		t, err := el.term(item, sc)
		if err != nil {
			return nil, err
		}
		args = append(args, t)
	}

	// Defined function application: macro-expand.
	if def, ok := el.defs[head.tok.text]; ok {
		if len(args) != len(def.Params) {
			return nil, errAt(l.line, l.col, "%s: got %d arguments, want %d", def.Name, len(args), len(def.Params))
		}
		repl := map[string]ast.Term{}
		for i, p := range def.Params {
			if args[i].Sort() != p.Sort {
				return nil, errAt(l.line, l.col, "%s: argument %d has sort %v, want %v", def.Name, i, args[i].Sort(), p.Sort)
			}
			repl[p.Name] = args[i]
		}
		out, err := ast.Substitute(def.Body, repl)
		if err != nil {
			return nil, errAt(l.line, l.col, "%s: %v", def.Name, err)
		}
		return out, nil
	}

	op, ok := ast.OpByName(head.tok.text, len(args))
	if !ok {
		return nil, errAt(l.line, l.col, "unknown operator %q with %d arguments", head.tok.text, len(args))
	}
	args = coerceNumerals(op, args)
	t, err := ast.NewApp(op, args...)
	if err != nil {
		return nil, errAt(l.line, l.col, "%v", err)
	}
	return t, nil
}

// coerceNumerals promotes integer literals to real literals when the
// application mixes them with Real-sorted siblings — benchmarks routinely
// write (+ x 1) with x Real.
func coerceNumerals(op ast.Op, args []ast.Term) []ast.Term {
	switch op {
	case ast.OpAdd, ast.OpSub, ast.OpNeg, ast.OpMul, ast.OpRealDiv,
		ast.OpLe, ast.OpLt, ast.OpGe, ast.OpGt, ast.OpEq, ast.OpDistinct, ast.OpIte:
	default:
		return args
	}
	anyReal := false
	for _, a := range args {
		if a.Sort() == ast.SortReal {
			anyReal = true
			break
		}
	}
	if !anyReal && op != ast.OpRealDiv {
		return args
	}
	out := args
	changed := false
	for i, a := range args {
		if il, ok := a.(*ast.IntLit); ok {
			if !changed {
				out = make([]ast.Term, len(args))
				copy(out, args)
				changed = true
			}
			out[i] = ast.RealBig(new(big.Rat).SetInt(il.V))
		}
	}
	return out
}

func (el *elaborator) letTerm(l *list, sc *scope) (ast.Term, error) {
	if len(l.items) != 3 {
		return nil, errAt(l.line, l.col, "let: want (let ((x t)...) body)")
	}
	bindings, ok := l.items[1].(*list)
	if !ok {
		line, col := l.items[1].pos()
		return nil, errAt(line, col, "let: expected a binding list")
	}
	// Parallel let: all right-hand sides elaborate in the outer scope.
	inner := sc
	for _, b := range bindings.items {
		bl, ok := b.(*list)
		if !ok || len(bl.items) != 2 {
			line, col := b.pos()
			return nil, errAt(line, col, "let: malformed binding")
		}
		name, ok := bl.items[0].(*atom)
		if !ok || name.tok.kind != tokSymbol {
			line, col := bl.items[0].pos()
			return nil, errAt(line, col, "let: malformed binding name")
		}
		val, err := el.term(bl.items[1], sc)
		if err != nil {
			return nil, err
		}
		inner = &scope{name: name.tok.text, value: val, parent: inner}
	}
	return el.term(l.items[2], inner)
}

func (el *elaborator) quantTerm(l *list, sc *scope, forall bool) (ast.Term, error) {
	if len(l.items) != 3 {
		return nil, errAt(l.line, l.col, "quantifier: want (forall ((x S)...) body)")
	}
	binders, ok := l.items[1].(*list)
	if !ok || len(binders.items) == 0 {
		line, col := l.items[1].pos()
		return nil, errAt(line, col, "quantifier: expected a non-empty binder list")
	}
	var bound []ast.SortedVar
	inner := sc
	for _, b := range binders.items {
		bl, ok := b.(*list)
		if !ok || len(bl.items) != 2 {
			line, col := b.pos()
			return nil, errAt(line, col, "quantifier: malformed binder")
		}
		name, ok := bl.items[0].(*atom)
		if !ok || name.tok.kind != tokSymbol {
			line, col := bl.items[0].pos()
			return nil, errAt(line, col, "quantifier: malformed binder name")
		}
		sort, err := el.sortArg(bl.items[1])
		if err != nil {
			return nil, err
		}
		bound = append(bound, ast.SortedVar{Name: name.tok.text, Sort: sort})
		inner = &scope{name: name.tok.text, value: ast.NewVar(name.tok.text, sort), parent: inner}
	}
	body, err := el.term(l.items[2], inner)
	if err != nil {
		return nil, err
	}
	q, err := ast.NewQuant(forall, bound, body)
	if err != nil {
		line, col := l.items[2].pos()
		return nil, errAt(line, col, "%v", err)
	}
	return q, nil
}

// rawText renders an s-expression back to flat text (for set-info values).
func rawText(se sexpr) string {
	switch n := se.(type) {
	case *atom:
		if n.tok.kind == tokString {
			return `"` + n.tok.text + `"`
		}
		return n.tok.text
	case *list:
		out := "("
		for i, item := range n.items {
			if i > 0 {
				out += " "
			}
			out += rawText(item)
		}
		return out + ")"
	default:
		return ""
	}
}
