// Package smtlib implements a reader and writer for the SMT-LIB v2
// concrete syntax: a lexer, an s-expression parser, an elaborator that
// produces typed ast terms and script commands, and a printer. Both the
// 2.6 spellings (str.to_int, str.in_re, …) and the legacy 2.0/2.5
// spellings used by the paper's examples (str.to.int, str.in.re, …) are
// accepted; printing uses the canonical 2.6 forms.
package smtlib

import (
	"fmt"
	"strings"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokLParen
	tokRParen
	tokSymbol
	tokKeyword // :keyword
	tokNumeral // 123
	tokDecimal // 1.5
	tokString  // "..."
)

type token struct {
	kind tokenKind
	text string // for strings: the unescaped value
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "<eof>"
	case tokLParen:
		return "("
	case tokRParen:
		return ")"
	case tokString:
		return fmt.Sprintf("%q", t.text)
	default:
		return t.text
	}
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// Error is a parse or elaboration error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func errAt(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) peek() (byte, bool) {
	if lx.pos >= len(lx.src) {
		return 0, false
	}
	return lx.src[lx.pos], true
}

func isSymbolChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	return strings.IndexByte("~!@$%^&*_-+=<>.?/", c) >= 0
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next returns the next token.
func (lx *lexer) next() (token, error) {
	for {
		c, ok := lx.peek()
		if !ok {
			return token{kind: tokEOF, line: lx.line, col: lx.col}, nil
		}
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == ';': // comment to end of line
			for {
				c, ok := lx.peek()
				if !ok || c == '\n' {
					break
				}
				lx.advance()
			}
		default:
			goto tokenStart
		}
	}
tokenStart:
	line, col := lx.line, lx.col
	c := lx.advance()
	switch {
	case c == '(':
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case c == ')':
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case c == '"':
		return lx.lexString(line, col)
	case c == '|': // quoted symbol
		start := lx.pos
		for {
			ch, ok := lx.peek()
			if !ok {
				return token{}, errAt(line, col, "unterminated quoted symbol")
			}
			if ch == '|' {
				text := lx.src[start:lx.pos]
				lx.advance()
				return token{kind: tokSymbol, text: text, line: line, col: col}, nil
			}
			lx.advance()
		}
	case c == ':':
		start := lx.pos
		for {
			ch, ok := lx.peek()
			if !ok || !isSymbolChar(ch) {
				break
			}
			lx.advance()
		}
		return token{kind: tokKeyword, text: ":" + lx.src[start:lx.pos], line: line, col: col}, nil
	case isDigit(c):
		start := lx.pos - 1
		kind := tokNumeral
		for {
			ch, ok := lx.peek()
			if !ok {
				break
			}
			if ch == '.' && kind == tokNumeral {
				kind = tokDecimal
				lx.advance()
				continue
			}
			if !isDigit(ch) {
				break
			}
			lx.advance()
		}
		return token{kind: kind, text: lx.src[start:lx.pos], line: line, col: col}, nil
	case isSymbolChar(c):
		start := lx.pos - 1
		for {
			ch, ok := lx.peek()
			if !ok || !isSymbolChar(ch) {
				break
			}
			lx.advance()
		}
		return token{kind: tokSymbol, text: lx.src[start:lx.pos], line: line, col: col}, nil
	default:
		return token{}, errAt(line, col, "unexpected character %q", c)
	}
}

func (lx *lexer) lexString(line, col int) (token, error) {
	var b strings.Builder
	for {
		ch, ok := lx.peek()
		if !ok {
			return token{}, errAt(line, col, "unterminated string literal")
		}
		lx.advance()
		if ch == '"' {
			// SMT-LIB 2.6 escapes a quote by doubling it.
			if nxt, ok := lx.peek(); ok && nxt == '"' {
				lx.advance()
				b.WriteByte('"')
				continue
			}
			return token{kind: tokString, text: b.String(), line: line, col: col}, nil
		}
		if ch == '\\' {
			// Accept \u{XX} escapes (2.6) plus the legacy \n \t \\ \".
			if nxt, ok := lx.peek(); ok {
				switch nxt {
				case 'u':
					lx.advance()
					if err := lx.lexUnicodeEscape(&b, line, col); err != nil {
						return token{}, err
					}
					continue
				case 'n':
					lx.advance()
					b.WriteByte('\n')
					continue
				case 't':
					lx.advance()
					b.WriteByte('\t')
					continue
				case '\\':
					lx.advance()
					b.WriteByte('\\')
					continue
				case '"':
					lx.advance()
					b.WriteByte('"')
					continue
				}
			}
			b.WriteByte('\\')
			continue
		}
		b.WriteByte(ch)
	}
}

func (lx *lexer) lexUnicodeEscape(b *strings.Builder, line, col int) error {
	ch, ok := lx.peek()
	if !ok || ch != '{' {
		return errAt(line, col, `malformed \u escape`)
	}
	lx.advance()
	val := 0
	n := 0
	for {
		ch, ok := lx.peek()
		if !ok {
			return errAt(line, col, `unterminated \u escape`)
		}
		lx.advance()
		if ch == '}' {
			break
		}
		d := hexVal(ch)
		if d < 0 || n >= 5 {
			return errAt(line, col, `malformed \u escape`)
		}
		val = val*16 + d
		n++
	}
	if n == 0 || val > 0x2FFFF {
		return errAt(line, col, `malformed \u escape`)
	}
	b.WriteRune(rune(val))
	return nil
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}
