package smtlib

import (
	"strings"
	"testing"
)

func lexAll(t *testing.T, src string) []token {
	t.Helper()
	lx := newLexer(src)
	var out []token
	for {
		tok, err := lx.next()
		if err != nil {
			t.Fatalf("lex error: %v", err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexBasicTokens(t *testing.T) {
	toks := lexAll(t, `(assert (= x 12 3.5 "hi" :kw))`)
	kinds := []tokenKind{
		tokLParen, tokSymbol, tokLParen, tokSymbol, tokSymbol,
		tokNumeral, tokDecimal, tokString, tokKeyword, tokRParen, tokRParen,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("token count = %d want %d: %v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d: kind %v want %v (%v)", i, toks[i].kind, k, toks[i])
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexAll(t, "; a comment\n(assert ; inline\n true)")
	if len(toks) != 4 {
		t.Fatalf("tokens = %v", toks)
	}
}

func TestLexLineColumns(t *testing.T) {
	toks := lexAll(t, "(a\n  b)")
	if toks[0].line != 1 || toks[0].col != 1 {
		t.Errorf("token 0 at %d:%d", toks[0].line, toks[0].col)
	}
	// b is on line 2, column 3.
	if toks[2].line != 2 || toks[2].col != 3 {
		t.Errorf("token b at %d:%d", toks[2].line, toks[2].col)
	}
}

func TestLexSymbolCharset(t *testing.T) {
	toks := lexAll(t, `str.++ re.* <= >= fuse_z_1 a!b ~weird$`)
	for _, tok := range toks {
		if tok.kind != tokSymbol {
			t.Errorf("%v should be a symbol", tok)
		}
	}
	if toks[0].text != "str.++" || toks[1].text != "re.*" {
		t.Errorf("symbol text wrong: %v", toks[:2])
	}
}

func TestLexStringEscapes(t *testing.T) {
	cases := []struct{ src, want string }{
		{`"plain"`, "plain"},
		{`"do""uble"`, `do"uble`},
		{`"\u{41}\u{42}"`, "AB"},
		{`"tab\there"`, "tab\there"},
		{`"back\\slash"`, `back\slash`},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if len(toks) != 1 || toks[0].kind != tokString {
			t.Fatalf("%s: %v", c.src, toks)
		}
		if toks[0].text != c.want {
			t.Errorf("%s: got %q want %q", c.src, toks[0].text, c.want)
		}
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`|unterminated quoted symbol`,
		`"\u{zz}"`,
		"\x01",
	}
	for _, src := range cases {
		lx := newLexer(src)
		var err error
		for i := 0; i < 100; i++ {
			var tok token
			tok, err = lx.next()
			if err != nil || tok.kind == tokEOF {
				break
			}
		}
		if err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	depth := 300
	src := "(assert " + strings.Repeat("(not ", depth) + "true" + strings.Repeat(")", depth) + ")"
	if _, err := ParseScript("(declare-fun p () Bool)" + src + "(check-sat)"); err != nil {
		t.Fatalf("deep nesting: %v", err)
	}
}

func TestParseBigNumerals(t *testing.T) {
	s := mustParse(t, `
(declare-fun x () Int)
(assert (= x 123456789012345678901234567890))
(check-sat)
`)
	if got := Print(s); !strings.Contains(got, "123456789012345678901234567890") {
		t.Errorf("big numeral lost:\n%s", got)
	}
}

func TestSexprErrors(t *testing.T) {
	cases := []string{")", "(a (b)", "((("}
	for _, src := range cases {
		p := newSexprParser(src)
		var err error
		for {
			var se sexpr
			se, err = p.parse()
			if err != nil || se == nil {
				break
			}
		}
		if err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}
