package smtlib

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/ast"
)

// Command is one SMT-LIB script command.
type Command interface{ aCommand() }

// SetLogic is (set-logic L).
type SetLogic struct{ Logic string }

// SetInfo is (set-info :kw value); the value is kept as raw text.
type SetInfo struct{ Keyword, Value string }

// SetOption is (set-option :kw value); the value is kept as raw text.
type SetOption struct{ Keyword, Value string }

// DeclareFun is a zero-ary function declaration, i.e. a free variable:
// (declare-fun x () S) or (declare-const x S).
type DeclareFun struct {
	Name string
	Sort ast.Sort
}

// DefineFun is (define-fun f ((p S)...) R body). Applications of f are
// macro-expanded during elaboration; the command is retained so scripts
// print back faithfully.
type DefineFun struct {
	Name   string
	Params []ast.SortedVar
	Result ast.Sort
	Body   ast.Term
}

// Assert is (assert t).
type Assert struct{ Term ast.Term }

// CheckSat is (check-sat).
type CheckSat struct{}

// GetModel is (get-model).
type GetModel struct{}

// Exit is (exit).
type Exit struct{}

func (*SetLogic) aCommand()   {}
func (*SetInfo) aCommand()    {}
func (*SetOption) aCommand()  {}
func (*DeclareFun) aCommand() {}
func (*DefineFun) aCommand()  {}
func (*Assert) aCommand()     {}
func (*CheckSat) aCommand()   {}
func (*GetModel) aCommand()   {}
func (*Exit) aCommand()       {}

// Script is a parsed SMT-LIB script.
type Script struct {
	Commands []Command

	renderOnce sync.Once
	rendered   string
}

// Logic returns the declared logic, or "" if none was set.
func (s *Script) Logic() string {
	for _, c := range s.Commands {
		if sl, ok := c.(*SetLogic); ok {
			return sl.Logic
		}
	}
	return ""
}

// Declarations returns the free-variable declarations in order.
func (s *Script) Declarations() []*DeclareFun {
	var out []*DeclareFun
	for _, c := range s.Commands {
		if d, ok := c.(*DeclareFun); ok {
			out = append(out, d)
		}
	}
	return out
}

// DeclarationSorts returns the declared variables keyed by name.
func (s *Script) DeclarationSorts() map[string]ast.Sort {
	out := map[string]ast.Sort{}
	for _, d := range s.Declarations() {
		out[d.Name] = d.Sort
	}
	return out
}

// Asserts returns the asserted terms in order.
func (s *Script) Asserts() []ast.Term {
	var out []ast.Term
	for _, c := range s.Commands {
		if a, ok := c.(*Assert); ok {
			out = append(out, a.Term)
		}
	}
	return out
}

// Conjunction returns the conjunction of all asserts (true if none).
func (s *Script) Conjunction() ast.Term {
	as := s.Asserts()
	if len(as) == 0 {
		return ast.True
	}
	return ast.And(as...)
}

// Clone returns a shallow command-level copy: the command list is fresh
// but terms are shared (terms are immutable).
func (s *Script) Clone() *Script {
	out := &Script{Commands: make([]Command, len(s.Commands))}
	copy(out.Commands, s.Commands)
	return out
}

// NewScript assembles a script from a logic name, ordered declarations,
// and assert terms, ending with (check-sat).
func NewScript(logic string, decls []*DeclareFun, asserts []ast.Term) *Script {
	s := &Script{}
	if logic != "" {
		s.Commands = append(s.Commands, &SetLogic{Logic: logic})
	}
	for _, d := range decls {
		s.Commands = append(s.Commands, d)
	}
	for _, a := range asserts {
		s.Commands = append(s.Commands, &Assert{Term: a})
	}
	s.Commands = append(s.Commands, &CheckSat{})
	return s
}

var builderPool = sync.Pool{New: func() any { return new(strings.Builder) }}

// Print renders the script in SMT-LIB concrete syntax.
func Print(s *Script) string {
	b := builderPool.Get().(*strings.Builder)
	b.Reset()
	for _, c := range s.Commands {
		printCommand(b, c)
	}
	out := b.String()
	builderPool.Put(b)
	return out
}

// Text returns the script's rendering, computed once and cached. Use it
// for finalized scripts that are rendered repeatedly (seed corpora,
// campaign reports); a script whose Commands may still change must go
// through Print. Safe for concurrent use.
func (s *Script) Text() string {
	s.renderOnce.Do(func() { s.rendered = Print(s) })
	return s.rendered
}

func printCommand(b *strings.Builder, c Command) {
	switch n := c.(type) {
	case *SetLogic:
		fmt.Fprintf(b, "(set-logic %s)\n", n.Logic)
	case *SetInfo:
		fmt.Fprintf(b, "(set-info %s %s)\n", n.Keyword, n.Value)
	case *SetOption:
		fmt.Fprintf(b, "(set-option %s %s)\n", n.Keyword, n.Value)
	case *DeclareFun:
		fmt.Fprintf(b, "(declare-fun %s () %s)\n", n.Name, n.Sort)
	case *DefineFun:
		fmt.Fprintf(b, "(define-fun %s (", n.Name)
		for i, p := range n.Params {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(b, "(%s %s)", p.Name, p.Sort)
		}
		fmt.Fprintf(b, ") %s %s)\n", n.Result, ast.Print(n.Body))
	case *Assert:
		fmt.Fprintf(b, "(assert %s)\n", ast.Print(n.Term))
	case *CheckSat:
		b.WriteString("(check-sat)\n")
	case *GetModel:
		b.WriteString("(get-model)\n")
	case *Exit:
		b.WriteString("(exit)\n")
	default:
		panic(fmt.Sprintf("smtlib: unknown command %T", c))
	}
}
