// Package regex implements the SMT-LIB regular-language operations used
// by the string logics (QF_S, QF_SLIA): membership via memoized
// Brzozowski derivatives, emptiness, length bounds, and bounded language
// enumeration. Expressions are normalized by smart constructors so the
// derivative closure stays finite even with complement and intersection.
package regex

import (
	"fmt"
	"sort"
	"strings"
)

// Regex is a regular-language expression over byte strings. (The string
// fragments this system generates and fuses are ASCII; the engine
// operates byte-wise, which keeps derivatives simple and exact for that
// fragment.)
type Regex interface {
	// key returns a canonical form used for memoization and
	// normalization. Structurally equal expressions share a key.
	key() string
}

type (
	// none is the empty language (re.none).
	none struct{}
	// eps is the language containing only the empty string.
	eps struct{}
	// lit matches exactly one literal string (str.to_re "...").
	lit struct{ s string }
	// rng matches a single byte in [lo, hi] (re.range).
	rng struct{ lo, hi byte }
	// anyChar matches any single byte (re.allchar).
	anyChar struct{}
	// star is Kleene iteration (re.*).
	star struct{ r Regex }
	// concat is sequential composition (re.++).
	concat struct{ rs []Regex }
	// union is alternation (re.union).
	union struct{ rs []Regex }
	// inter is intersection (re.inter).
	inter struct{ rs []Regex }
	// comp is complement (re.comp).
	comp struct{ r Regex }
)

func (none) key() string    { return "∅" }
func (eps) key() string     { return "ε" }
func (l lit) key() string   { return fmt.Sprintf("L%q", l.s) }
func (r rng) key() string   { return fmt.Sprintf("R%d-%d", r.lo, r.hi) }
func (anyChar) key() string { return "." }
func (s star) key() string  { return "(" + s.r.key() + ")*" }
func (c concat) key() string {
	parts := make([]string, len(c.rs))
	for i, r := range c.rs {
		parts[i] = r.key()
	}
	return "(" + strings.Join(parts, "·") + ")"
}
func (u union) key() string {
	parts := make([]string, len(u.rs))
	for i, r := range u.rs {
		parts[i] = r.key()
	}
	return "(" + strings.Join(parts, "|") + ")"
}
func (n inter) key() string {
	parts := make([]string, len(n.rs))
	for i, r := range n.rs {
		parts[i] = r.key()
	}
	return "(" + strings.Join(parts, "&") + ")"
}
func (c comp) key() string { return "¬(" + c.r.key() + ")" }

// Constructors (normalizing).

// None returns the empty language.
func None() Regex { return none{} }

// Eps returns the language {""}.
func Eps() Regex { return eps{} }

// Lit returns the language {s}.
func Lit(s string) Regex {
	if s == "" {
		return eps{}
	}
	return lit{s: s}
}

// Range returns the single-byte range language [lo, hi]; empty if lo>hi.
func Range(lo, hi byte) Regex {
	if lo > hi {
		return none{}
	}
	return rng{lo: lo, hi: hi}
}

// AnyChar returns the language of all single-byte strings.
func AnyChar() Regex { return anyChar{} }

// All returns the language of all strings (re.all).
func All() Regex { return Star(AnyChar()) }

// Star returns the Kleene closure of r.
func Star(r Regex) Regex {
	switch r.(type) {
	case none, eps:
		return eps{}
	case star:
		return r
	}
	return star{r: r}
}

// Plus returns one-or-more iterations of r.
func Plus(r Regex) Regex { return Concat(r, Star(r)) }

// Opt returns r or the empty string.
func Opt(r Regex) Regex { return Union(r, Eps()) }

// Concat returns the sequential composition of rs.
func Concat(rs ...Regex) Regex {
	var flat []Regex
	for _, r := range rs {
		switch n := r.(type) {
		case none:
			return none{}
		case eps:
			// identity
		case concat:
			flat = append(flat, n.rs...)
		default:
			flat = append(flat, r)
		}
	}
	switch len(flat) {
	case 0:
		return eps{}
	case 1:
		return flat[0]
	}
	return concat{rs: flat}
}

// Union returns the alternation of rs.
func Union(rs ...Regex) Regex {
	seen := map[string]bool{}
	var flat []Regex
	for _, r := range rs {
		switch n := r.(type) {
		case none:
			// identity
		case union:
			for _, s := range n.rs {
				if !seen[s.key()] {
					seen[s.key()] = true
					flat = append(flat, s)
				}
			}
		default:
			if !seen[r.key()] {
				seen[r.key()] = true
				flat = append(flat, r)
			}
		}
	}
	switch len(flat) {
	case 0:
		return none{}
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].key() < flat[j].key() })
	return union{rs: flat}
}

// Inter returns the intersection of rs.
func Inter(rs ...Regex) Regex {
	seen := map[string]bool{}
	var flat []Regex
	for _, r := range rs {
		switch n := r.(type) {
		case none:
			return none{}
		case inter:
			for _, s := range n.rs {
				if !seen[s.key()] {
					seen[s.key()] = true
					flat = append(flat, s)
				}
			}
		default:
			if isAll(r) {
				continue
			}
			if !seen[r.key()] {
				seen[r.key()] = true
				flat = append(flat, r)
			}
		}
	}
	switch len(flat) {
	case 0:
		return All()
	case 1:
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].key() < flat[j].key() })
	return inter{rs: flat}
}

// Comp returns the complement of r.
func Comp(r Regex) Regex {
	if c, ok := r.(comp); ok {
		return c.r
	}
	if _, ok := r.(none); ok {
		return All()
	}
	if isAll(r) {
		return none{}
	}
	return comp{r: r}
}

// Diff returns r minus s.
func Diff(r, s Regex) Regex { return Inter(r, Comp(s)) }

func isAll(r Regex) bool {
	s, ok := r.(star)
	if !ok {
		return false
	}
	_, ok = s.r.(anyChar)
	return ok
}

// Key returns the canonical memoization key of r.
func Key(r Regex) string { return r.key() }
