package regex

import (
	"slices"

	"repro/internal/fuel"
	"repro/internal/telemetry"
)

// cDerivatives counts Brzozowski derivative constructions under a fuel
// meter — one increment per fuel unit spent matching or enumerating.
var cDerivatives = telemetry.NewCounter("yy_regex_derivatives_total", "regex derivative constructions")

// Nullable reports whether r accepts the empty string.
func Nullable(r Regex) bool {
	switch n := r.(type) {
	case none, lit, rng, anyChar:
		if l, ok := n.(lit); ok {
			return l.s == ""
		}
		return false
	case eps, star:
		return true
	case concat:
		for _, s := range n.rs {
			if !Nullable(s) {
				return false
			}
		}
		return true
	case union:
		for _, s := range n.rs {
			if Nullable(s) {
				return true
			}
		}
		return false
	case inter:
		for _, s := range n.rs {
			if !Nullable(s) {
				return false
			}
		}
		return true
	case comp:
		return !Nullable(n.r)
	default:
		panic("regex: unknown node")
	}
}

// Derive returns the Brzozowski derivative of r with respect to byte c:
// the language { w | cw ∈ L(r) }.
func Derive(r Regex, c byte) Regex {
	switch n := r.(type) {
	case none, eps:
		return none{}
	case lit:
		if len(n.s) > 0 && n.s[0] == c {
			return Lit(n.s[1:])
		}
		return none{}
	case rng:
		if c >= n.lo && c <= n.hi {
			return eps{}
		}
		return none{}
	case anyChar:
		return eps{}
	case star:
		return Concat(Derive(n.r, c), n)
	case concat:
		// d(r1 r2...) = d(r1) r2... | [nullable r1] d(r2...)
		head := Concat(append([]Regex{Derive(n.rs[0], c)}, n.rs[1:]...)...)
		if !Nullable(n.rs[0]) {
			return head
		}
		rest := Concat(n.rs[1:]...)
		return Union(head, Derive(rest, c))
	case union:
		outs := make([]Regex, len(n.rs))
		for i, s := range n.rs {
			outs[i] = Derive(s, c)
		}
		return Union(outs...)
	case inter:
		outs := make([]Regex, len(n.rs))
		for i, s := range n.rs {
			outs[i] = Derive(s, c)
		}
		return Inter(outs...)
	case comp:
		return Comp(Derive(n.r, c))
	default:
		panic("regex: unknown node")
	}
}

// Matcher matches strings against a regex with memoized derivatives.
// It is not safe for concurrent use; create one per goroutine.
type Matcher struct {
	root Regex
	memo map[string]map[byte]Regex
	// Memoize disables derivative caching when false (used by the
	// performance-defect simulation in the solver under test).
	Memoize bool
	// Fuel, when set, charges one unit per derivative construction.
	// An exhausted meter makes Match answer false conservatively; the
	// solver detects the exhaustion on the meter and reports a timeout
	// instead of trusting the answer.
	Fuel *fuel.Meter
	// Telem records derivative constructions into the owner's tracker.
	// Nil records nothing.
	Telem *telemetry.Tracker
}

// NewMatcher returns a matcher for r.
func NewMatcher(r Regex) *Matcher {
	return &Matcher{root: r, memo: map[string]map[byte]Regex{}, Memoize: true}
}

// Match reports whether s ∈ L(r).
func (m *Matcher) Match(s string) bool {
	cur := m.root
	for i := 0; i < len(s); i++ {
		if !m.Fuel.Spend(1) {
			return false
		}
		m.Telem.Inc(cDerivatives)
		cur = m.derive(cur, s[i])
		if _, dead := cur.(none); dead {
			return false
		}
	}
	return Nullable(cur)
}

func (m *Matcher) derive(r Regex, c byte) Regex {
	if !m.Memoize {
		return Derive(r, c)
	}
	k := r.key()
	byChar := m.memo[k]
	if byChar == nil {
		byChar = map[byte]Regex{}
		m.memo[k] = byChar
	}
	if d, ok := byChar[c]; ok {
		return d
	}
	d := Derive(r, c)
	byChar[c] = d
	return d
}

// Match is a convenience one-shot matcher.
func Match(r Regex, s string) bool { return NewMatcher(r).Match(s) }

// MatchFuel is Match under a fuel meter: derivative construction spends
// from m, and an exhausted meter yields false (no match claimed). Each
// derivative is recorded into tr (nil records nothing).
func MatchFuel(r Regex, s string, m *fuel.Meter, tr *telemetry.Tracker) bool {
	mm := NewMatcher(r)
	mm.Fuel = m
	mm.Telem = tr
	return mm.Match(s)
}

// RelevantChars returns a small alphabet sufficient to distinguish the
// languages reachable from r: every byte mentioned in literals and range
// endpoints, plus one representative byte not mentioned (if any byte is
// left). Exploring derivatives over this alphabet decides emptiness.
func RelevantChars(r Regex) []byte {
	set := map[byte]bool{}
	collectChars(r, set)
	out := make([]byte, 0, len(set)+1)
	for c := range set {
		out = append(out, c)
	}
	// One representative outside the mentioned set: prefer a printable
	// byte for readable counterexamples.
	for _, cand := range []byte{'~', '#', 1} {
		if !set[cand] {
			out = append(out, cand)
			break
		}
	}
	slices.Sort(out)
	return out
}

func collectChars(r Regex, set map[byte]bool) {
	switch n := r.(type) {
	case lit:
		for i := 0; i < len(n.s); i++ {
			set[n.s[i]] = true
		}
	case rng:
		// Endpoints and one interior byte characterize the range's
		// interaction with other ranges/literals sufficiently for the
		// fragments generated here.
		set[n.lo] = true
		set[n.hi] = true
		if n.lo+1 < n.hi {
			set[n.lo+1] = true
		}
	case star:
		collectChars(n.r, set)
	case concat:
		for _, s := range n.rs {
			collectChars(s, set)
		}
	case union:
		for _, s := range n.rs {
			collectChars(s, set)
		}
	case inter:
		for _, s := range n.rs {
			collectChars(s, set)
		}
	case comp:
		collectChars(n.r, set)
	}
}

// IsEmpty reports whether L(r) is empty, by exploring the derivative
// closure of r over its relevant alphabet.
func IsEmpty(r Regex) bool {
	alphabet := RelevantChars(r)
	seen := map[string]bool{}
	var explore func(Regex) bool // returns true if a member is reachable
	explore = func(cur Regex) bool {
		if Nullable(cur) {
			return true
		}
		k := cur.key()
		if seen[k] {
			return false
		}
		seen[k] = true
		if _, dead := cur.(none); dead {
			return false
		}
		for _, c := range alphabet {
			if explore(Derive(cur, c)) {
				return true
			}
		}
		return false
	}
	return !explore(r)
}

// Enumerate returns up to limit members of L(r) with length ≤ maxLen, in
// shortlex order over the relevant alphabet. It is used by the string
// solver to propose candidate assignments.
func Enumerate(r Regex, maxLen, limit int) []string {
	return EnumerateFuel(r, maxLen, limit, nil, nil)
}

// EnumerateFuel is Enumerate under a fuel meter: one unit per explored
// derivative state. Exhaustion truncates the enumeration. Each explored
// state is recorded into tr (nil records nothing).
func EnumerateFuel(r Regex, maxLen, limit int, m *fuel.Meter, tr *telemetry.Tracker) []string {
	alphabet := RelevantChars(r)
	var out []string
	type state struct {
		r Regex
		s string
	}
	queue := []state{{r: r, s: ""}}
	// Bound total work: sparse languages (e.g. (aaa)+ with few short
	// members) would otherwise force exploring the full |Σ|^maxLen tree.
	processed := 0
	for len(queue) > 0 && len(out) < limit && processed < 20000 {
		processed++
		if !m.Spend(1) {
			break
		}
		tr.Inc(cDerivatives)
		cur := queue[0]
		queue = queue[1:]
		if Nullable(cur.r) {
			out = append(out, cur.s)
			if len(out) >= limit {
				break
			}
		}
		if len(cur.s) >= maxLen {
			continue
		}
		for _, c := range alphabet {
			d := Derive(cur.r, c)
			if _, dead := d.(none); dead {
				continue
			}
			queue = append(queue, state{r: d, s: cur.s + string(c)})
		}
		// Bound the frontier: derivative normalization keeps distinct
		// states few, but pathological complements could blow up.
		if len(queue) > 100000 {
			break
		}
	}
	return out
}

// MinLen returns the length of the shortest member of L(r), and false
// if the language is empty.
func MinLen(r Regex) (int, bool) { return MinLenFuel(r, nil, nil) }

// MinLenFuel is MinLen under a fuel meter: one unit per explored
// derivative state, recorded into tr (nil records nothing). Exhaustion
// gives up conservatively, reporting the trivial lower bound 0 — the
// solver then simply learns nothing from this regex. The string solver
// calls this on the solve path, so the BFS must charge: complement-heavy
// regexes can have derivative graphs far larger than the state cap.
func MinLenFuel(r Regex, m *fuel.Meter, tr *telemetry.Tracker) (int, bool) {
	alphabet := RelevantChars(r)
	type state struct {
		r Regex
		n int
	}
	queue := []state{{r: r}}
	seen := map[string]bool{r.key(): true}
	for len(queue) > 0 {
		if !m.Spend(1) {
			return 0, true // fuel exhausted: conservative bound
		}
		tr.Inc(cDerivatives)
		cur := queue[0]
		queue = queue[1:]
		if Nullable(cur.r) {
			return cur.n, true
		}
		for _, c := range alphabet {
			d := Derive(cur.r, c)
			if _, dead := d.(none); dead {
				continue
			}
			k := d.key()
			if seen[k] {
				continue
			}
			seen[k] = true
			queue = append(queue, state{r: d, n: cur.n + 1})
		}
		if len(seen) > 100000 {
			return 0, true // give up conservatively: report minimal bound 0
		}
	}
	return 0, false
}

// MaxLen returns the length of the longest member of L(r). The second
// result is false when the language is infinite (or empty).
func MaxLen(r Regex) (int, bool) {
	if IsEmpty(r) {
		return 0, false
	}
	alphabet := RelevantChars(r)
	// Longest path in the derivative graph. A cycle through a state
	// whose language is non-empty pumps arbitrarily long members, so the
	// maximum is unbounded; empty-language states are pruned first.
	memo := map[string]int{}
	const onStack = -2
	var longest func(Regex) (int, bool)
	longest = func(cur Regex) (int, bool) {
		k := cur.key()
		if v, ok := memo[k]; ok {
			if v == onStack {
				return 0, false // live cycle: infinite
			}
			return v, true
		}
		if IsEmpty(cur) {
			memo[k] = -1
			return -1, true // no member from here
		}
		memo[k] = onStack
		best := -1
		if Nullable(cur) {
			best = 0
		}
		for _, c := range alphabet {
			sub, fin := longest(Derive(cur, c))
			if !fin {
				memo[k] = 0
				return 0, false
			}
			if sub >= 0 && sub+1 > best {
				best = sub + 1
			}
		}
		memo[k] = best
		return best, true
	}
	n, fin := longest(r)
	if !fin || n < 0 {
		return 0, false
	}
	return n, true
}
