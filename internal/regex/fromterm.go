package regex

import (
	"fmt"

	"repro/internal/ast"
)

// FromTerm converts a ground RegLan term into a Regex. Terms containing
// free variables (e.g. (str.to_re x)) are reported as an error; callers
// treat such memberships as undecided.
func FromTerm(t ast.Term) (Regex, error) {
	app, ok := t.(*ast.App)
	if !ok {
		return nil, fmt.Errorf("regex: non-application RegLan term %s", ast.Print(t))
	}
	sub := func(i int) (Regex, error) { return FromTerm(app.Args[i]) }
	subAll := func() ([]Regex, error) {
		out := make([]Regex, len(app.Args))
		for i := range app.Args {
			r, err := FromTerm(app.Args[i])
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	switch app.Op {
	case ast.OpStrToRe:
		lit, ok := app.Args[0].(*ast.StrLit)
		if !ok {
			return nil, fmt.Errorf("regex: non-literal str.to_re argument %s", ast.Print(app.Args[0]))
		}
		return Lit(lit.V), nil
	case ast.OpReRange:
		lo, ok1 := app.Args[0].(*ast.StrLit)
		hi, ok2 := app.Args[1].(*ast.StrLit)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("regex: non-literal re.range bounds")
		}
		// Per SMT-LIB, re.range is empty unless both bounds are
		// single-character strings.
		if len(lo.V) != 1 || len(hi.V) != 1 {
			return None(), nil
		}
		return Range(lo.V[0], hi.V[0]), nil
	case ast.OpReStar:
		r, err := sub(0)
		if err != nil {
			return nil, err
		}
		return Star(r), nil
	case ast.OpRePlus:
		r, err := sub(0)
		if err != nil {
			return nil, err
		}
		return Plus(r), nil
	case ast.OpReOpt:
		r, err := sub(0)
		if err != nil {
			return nil, err
		}
		return Opt(r), nil
	case ast.OpReUnion:
		rs, err := subAll()
		if err != nil {
			return nil, err
		}
		return Union(rs...), nil
	case ast.OpReInter:
		rs, err := subAll()
		if err != nil {
			return nil, err
		}
		return Inter(rs...), nil
	case ast.OpReConcat:
		rs, err := subAll()
		if err != nil {
			return nil, err
		}
		return Concat(rs...), nil
	case ast.OpReComp:
		r, err := sub(0)
		if err != nil {
			return nil, err
		}
		return Comp(r), nil
	case ast.OpReDiff:
		a, err := sub(0)
		if err != nil {
			return nil, err
		}
		b, err := sub(1)
		if err != nil {
			return nil, err
		}
		return Diff(a, b), nil
	case ast.OpReAllChar:
		return AnyChar(), nil
	case ast.OpReAll:
		return All(), nil
	case ast.OpReNone:
		return None(), nil
	default:
		return nil, fmt.Errorf("regex: unsupported RegLan operator %v", app.Op)
	}
}
