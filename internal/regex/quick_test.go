package regex

import (
	"strings"
	"testing"
	"testing/quick"
)

// clamp keeps quick-generated strings small and over a tiny alphabet so
// the properties exercise interesting overlaps.
func clamp(s string, n int) string {
	var b strings.Builder
	for i := 0; i < len(s) && b.Len() < n; i++ {
		b.WriteByte("ab"[int(s[i])%2])
	}
	return b.String()
}

// Property: L(Lit(s)) = {s}.
func TestQuickLitExact(t *testing.T) {
	f := func(sRaw, otherRaw string) bool {
		s := clamp(sRaw, 6)
		other := clamp(otherRaw, 6)
		r := Lit(s)
		if !Match(r, s) {
			return false
		}
		if other != s && Match(r, other) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: star closure — u^k ∈ L((u)*) for all small k.
func TestQuickStarPumping(t *testing.T) {
	f := func(uRaw string, kRaw uint8) bool {
		u := clamp(uRaw, 3)
		if u == "" {
			return true
		}
		k := int(kRaw) % 5
		r := Star(Lit(u))
		return Match(r, strings.Repeat(u, k))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: complement is an exact involution on membership.
func TestQuickComplement(t *testing.T) {
	f := func(sRaw, wRaw string) bool {
		s := clamp(sRaw, 4)
		w := clamp(wRaw, 6)
		r := Union(Lit(s), Concat(Lit("a"), Star(Lit("b"))))
		return Match(r, w) != Match(Comp(r), w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: intersection is conjunction of memberships.
func TestQuickIntersection(t *testing.T) {
	f := func(wRaw string) bool {
		w := clamp(wRaw, 6)
		r1 := Star(Lit("ab"))
		r2 := Star(Union(Lit("a"), Lit("b")))
		return Match(Inter(r1, r2), w) == (Match(r1, w) && Match(r2, w))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: concatenation splits — w ∈ L(r1 · r2) iff some split of w
// has its prefix in L(r1) and suffix in L(r2).
func TestQuickConcatSplits(t *testing.T) {
	f := func(wRaw string) bool {
		w := clamp(wRaw, 6)
		r1 := Union(Lit("a"), Lit("ab"))
		r2 := Star(Lit("b"))
		direct := Match(Concat(r1, r2), w)
		split := false
		for i := 0; i <= len(w); i++ {
			if Match(r1, w[:i]) && Match(r2, w[i:]) {
				split = true
				break
			}
		}
		return direct == split
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated member matches, and lengths respect
// MinLen.
func TestQuickEnumerateMembers(t *testing.T) {
	f := func(uRaw string) bool {
		u := clamp(uRaw, 3)
		if u == "" {
			u = "a"
		}
		r := Plus(Lit(u))
		min, ok := MinLen(r)
		if !ok {
			return false
		}
		for _, s := range Enumerate(r, 8, 20) {
			if !Match(r, s) || len(s) < min {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
