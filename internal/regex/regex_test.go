package regex

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ast"
)

func TestMatchBasics(t *testing.T) {
	cases := []struct {
		r    Regex
		yes  []string
		no   []string
		name string
	}{
		{Lit("abc"), []string{"abc"}, []string{"", "ab", "abcd", "abd"}, "lit"},
		{Star(Lit("aa")), []string{"", "aa", "aaaa", "aaaaaa"}, []string{"a", "aaa", "ab"}, "star"},
		{Plus(Lit("ab")), []string{"ab", "abab"}, []string{"", "a", "aba"}, "plus"},
		{Opt(Lit("x")), []string{"", "x"}, []string{"xx", "y"}, "opt"},
		{Union(Lit("cat"), Lit("dog")), []string{"cat", "dog"}, []string{"", "catdog", "cow"}, "union"},
		{Concat(Lit("a"), Star(Lit("b")), Lit("c")), []string{"ac", "abc", "abbbc"}, []string{"a", "c", "abcb"}, "concat"},
		{Range('a', 'z'), []string{"a", "m", "z"}, []string{"", "A", "aa", "{"}, "range"},
		{AnyChar(), []string{"a", "!", "~"}, []string{"", "ab"}, "anychar"},
		{All(), []string{"", "anything at all"}, nil, "all"},
		{None(), nil, []string{"", "a"}, "none"},
		{Inter(Star(Lit("a")), Concat(AnyChar(), AnyChar())), []string{"aa"}, []string{"", "a", "aaa"}, "inter"},
		{Comp(Lit("no")), []string{"", "yes", "n", "noo"}, []string{"no"}, "comp"},
		{Diff(Star(Lit("a")), Eps()), []string{"a", "aa"}, []string{""}, "diff"},
	}
	for _, c := range cases {
		for _, s := range c.yes {
			if !Match(c.r, s) {
				t.Errorf("%s: %q should match %s", c.name, s, Key(c.r))
			}
		}
		for _, s := range c.no {
			if Match(c.r, s) {
				t.Errorf("%s: %q should not match %s", c.name, s, Key(c.r))
			}
		}
	}
}

func TestNullable(t *testing.T) {
	if Nullable(Lit("a")) || !Nullable(Lit("")) || !Nullable(Eps()) || Nullable(None()) {
		t.Error("basic nullability wrong")
	}
	if !Nullable(Star(Lit("a"))) || Nullable(Plus(Lit("a"))) || !Nullable(Opt(Lit("a"))) {
		t.Error("closure nullability wrong")
	}
	if !Nullable(Comp(Lit("a"))) || Nullable(Comp(Eps())) {
		t.Error("complement nullability wrong")
	}
}

func TestIsEmpty(t *testing.T) {
	empties := []Regex{
		None(),
		Inter(Lit("a"), Lit("b")),
		Inter(Star(Lit("aa")), Lit("a")),
		Diff(Lit("x"), Lit("x")),
		Concat(Lit("a"), None()),
		Range('z', 'a'),
	}
	for _, r := range empties {
		if !IsEmpty(r) {
			t.Errorf("IsEmpty(%s) should be true", Key(r))
		}
	}
	nonEmpties := []Regex{
		Eps(), Lit("a"), Star(None()),
		Inter(Star(Lit("a")), Plus(Lit("a"))),
		Comp(All()), // = none... actually Comp(All()) normalizes to None
	}
	// Comp(All()) normalizes to None; drop it from the non-empty list.
	nonEmpties = nonEmpties[:len(nonEmpties)-1]
	for _, r := range nonEmpties {
		if IsEmpty(r) {
			t.Errorf("IsEmpty(%s) should be false", Key(r))
		}
	}
}

func TestNormalization(t *testing.T) {
	if Key(Union(Lit("a"), Lit("a"))) != Key(Lit("a")) {
		t.Error("duplicate union not collapsed")
	}
	if Key(Union(Lit("b"), Lit("a"))) != Key(Union(Lit("a"), Lit("b"))) {
		t.Error("union not canonically ordered")
	}
	if Key(Star(Star(Lit("a")))) != Key(Star(Lit("a"))) {
		t.Error("nested star not collapsed")
	}
	if Key(Concat(Lit("a"), Eps(), Lit("b"))) != Key(Concat(Lit("a"), Lit("b"))) {
		t.Error("eps in concat not dropped")
	}
	if Key(Comp(Comp(Lit("a")))) != Key(Lit("a")) {
		t.Error("double complement not collapsed")
	}
	if _, isNone := Concat(Lit("a"), None()).(none); !isNone {
		t.Error("concat with none should be none")
	}
}

func TestMinMaxLen(t *testing.T) {
	cases := []struct {
		r        Regex
		min      int
		max      int
		bounded  bool
		nonEmpty bool
	}{
		{Lit("abc"), 3, 3, true, true},
		{Star(Lit("ab")), 0, 0, false, true},
		{Union(Lit("a"), Lit("bcd")), 1, 3, true, true},
		{Concat(Lit("a"), Opt(Lit("bb"))), 1, 3, true, true},
		{None(), 0, 0, false, false},
		{Eps(), 0, 0, true, true},
		{Plus(Lit("xy")), 2, 0, false, true},
	}
	for _, c := range cases {
		min, ok := MinLen(c.r)
		if ok != c.nonEmpty {
			t.Errorf("MinLen(%s) ok=%v want %v", Key(c.r), ok, c.nonEmpty)
			continue
		}
		if ok && min != c.min {
			t.Errorf("MinLen(%s) = %d want %d", Key(c.r), min, c.min)
		}
		max, bounded := MaxLen(c.r)
		if bounded != c.bounded {
			t.Errorf("MaxLen(%s) bounded=%v want %v", Key(c.r), bounded, c.bounded)
			continue
		}
		if bounded && max != c.max {
			t.Errorf("MaxLen(%s) = %d want %d", Key(c.r), max, c.max)
		}
	}
}

func TestEnumerate(t *testing.T) {
	got := Enumerate(Star(Lit("ab")), 6, 10)
	want := []string{"", "ab", "abab", "ababab"}
	if len(got) != len(want) {
		t.Fatalf("Enumerate = %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Enumerate = %v want %v", got, want)
		}
	}
	// Every enumerated member actually matches.
	r := Union(Plus(Lit("a")), Concat(Lit("b"), Star(Range('0', '9'))))
	for _, s := range Enumerate(r, 5, 50) {
		if !Match(r, s) {
			t.Errorf("enumerated non-member %q", s)
		}
	}
}

func TestMatcherMemoizationEquivalence(t *testing.T) {
	r := Inter(Star(Union(Lit("a"), Lit("bb"))), Comp(Lit("abb")))
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		n := rng.Intn(8)
		var b strings.Builder
		for j := 0; j < n; j++ {
			b.WriteByte("ab"[rng.Intn(2)])
		}
		s := b.String()
		m1 := NewMatcher(r)
		m2 := NewMatcher(r)
		m2.Memoize = false
		if m1.Match(s) != m2.Match(s) {
			t.Fatalf("memoized and plain matcher disagree on %q", s)
		}
	}
}

// TestDerivativePumping cross-checks the derivative matcher against a
// direct structural matcher on random small strings — a property test of
// the engine's core invariant.
func TestDerivativePumping(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	regexes := []Regex{
		Star(Lit("aa")),
		Concat(Star(Lit("a")), Lit("b")),
		Union(Star(Lit("ab")), Plus(Lit("ba"))),
		Inter(Star(AnyChar()), Comp(Concat(Lit("a"), Star(AnyChar())))),
	}
	// Reference: w ∈ L(r) iff deriving by each byte ends nullable —
	// but implemented with fresh matchers per prefix split to exercise
	// concat distribution.
	for _, r := range regexes {
		for i := 0; i < 100; i++ {
			n := rng.Intn(6)
			var b strings.Builder
			for j := 0; j < n; j++ {
				b.WriteByte("ab"[rng.Intn(2)])
			}
			s := b.String()
			direct := Match(r, s)
			// Split matching: s ∈ L(r) iff "" ∈ L(d_s(r)).
			cur := r
			for k := 0; k < len(s); k++ {
				cur = Derive(cur, s[k])
			}
			if Nullable(cur) != direct {
				t.Fatalf("split/direct mismatch on %q for %s", s, Key(r))
			}
		}
	}
}

func TestFromTerm(t *testing.T) {
	// (re.* (str.to_re "aa"))
	inner := ast.MustApp(ast.OpStrToRe, ast.Str("aa"))
	star := ast.MustApp(ast.OpReStar, inner)
	r, err := FromTerm(star)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(r, "aaaa") || Match(r, "aaa") {
		t.Error("converted regex misbehaves")
	}
	// re.range
	rr := ast.MustApp(ast.OpReRange, ast.Str("a"), ast.Str("c"))
	r, err = FromTerm(rr)
	if err != nil {
		t.Fatal(err)
	}
	if !Match(r, "b") || Match(r, "d") {
		t.Error("range misbehaves")
	}
	// Multi-char range bound is the empty language per SMT-LIB.
	rr = ast.MustApp(ast.OpReRange, ast.Str("ab"), ast.Str("c"))
	r, err = FromTerm(rr)
	if err != nil {
		t.Fatal(err)
	}
	if !IsEmpty(r) {
		t.Error("malformed range should be empty")
	}
	// Non-ground argument is rejected.
	v := ast.NewVar("x", ast.SortString)
	ng := ast.MustApp(ast.OpStrToRe, v)
	if _, err := FromTerm(ng); err == nil {
		t.Error("non-ground str.to_re should be rejected")
	}
}

func TestFromTermComposite(t *testing.T) {
	// (re.++ (re.opt (str.to_re "x")) (re.union (str.to_re "y") re.allchar))
	term := ast.MustApp(ast.OpReConcat,
		ast.MustApp(ast.OpReOpt, ast.MustApp(ast.OpStrToRe, ast.Str("x"))),
		ast.MustApp(ast.OpReUnion, ast.MustApp(ast.OpStrToRe, ast.Str("y")), ast.MustApp(ast.OpReAllChar)))
	r, err := FromTerm(term)
	if err != nil {
		t.Fatal(err)
	}
	for _, yes := range []string{"y", "xy", "a", "xz"} {
		if !Match(r, yes) {
			t.Errorf("%q should match", yes)
		}
	}
	for _, no := range []string{"", "xyz", "yy"} {
		if Match(r, no) {
			t.Errorf("%q should not match", no)
		}
	}
}
