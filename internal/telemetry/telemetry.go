// Package telemetry is the campaign observability layer: named
// counters and step histograms registered at package initialization
// (the same registration style as internal/coverage probes), recorded
// into per-owner Trackers and aggregated into deterministic Snapshots.
//
// Everything here is step-based, never wall-clock: instrumentation
// sites piggyback on the existing fuel.Meter charge points (one
// counter increment where one fuel unit is spent), so metric totals
// are a pure function of the work performed — bit-identical for any
// thread count, any scheduler, any machine. The only time-based
// sampling in the repository stays behind the golint wall-clock
// allowlist (internal/watchdog, cmd/bench); this package never touches
// the clock.
//
// Concurrency model: a Tracker is NOT safe for concurrent use — like
// fuel.Meter, every worker (solver instance) owns its own, and the
// campaign's classification stage merges Snapshots in deterministic
// task order. This keeps the hot-path increment a single slice store,
// which is what holds instrumentation overhead under the bench gate's
// 3% bound.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// Counter is a registered monotonic counter. Counters are created once
// at package initialization (NewCounter), so the registry knows the
// full metric universe before any Tracker exists.
type Counter struct {
	Name string
	Help string
	idx  int
}

// Histogram is a registered step-valued histogram with fixed bucket
// upper bounds (cumulative, Prometheus-style; an implicit +Inf bucket
// catches the rest).
type Histogram struct {
	Name    string
	Help    string
	Buckets []int64 // strictly increasing upper bounds
	idx     int
}

var (
	regMu      sync.Mutex
	counters   []*Counter
	histograms []*Histogram
	byName     = map[string]bool{}
)

// NewCounter registers a counter. Duplicate names panic: metrics model
// static instrumentation sites.
func NewCounter(name, help string) *Counter {
	regMu.Lock()
	defer regMu.Unlock()
	if byName[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	byName[name] = true
	c := &Counter{Name: name, Help: help, idx: len(counters)}
	counters = append(counters, c)
	return c
}

// NewHistogram registers a histogram with the given bucket upper
// bounds (must be strictly increasing and non-empty). Duplicate names
// panic.
func NewHistogram(name, help string, buckets []int64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not increasing", name))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if byName[name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	byName[name] = true
	h := &Histogram{Name: name, Help: help, Buckets: buckets, idx: len(histograms)}
	histograms = append(histograms, h)
	return h
}

// ExpBuckets returns n bucket bounds starting at start and multiplying
// by factor — the usual shape for step counts spanning orders of
// magnitude.
func ExpBuckets(start, factor int64, n int) []int64 {
	out := make([]int64, n)
	v := start
	for i := 0; i < n; i++ {
		out[i] = v
		v *= factor
	}
	return out
}

// histState is one histogram's recorded data: per-bucket counts (not
// cumulative; bucket i counts values ≤ Buckets[i] that exceeded
// Buckets[i-1]), an overflow count, the total count, and the sum.
type histState struct {
	counts   []int64
	overflow int64
	count    int64
	sum      int64
}

// Tracker records counter increments and histogram observations for
// one owner. A nil Tracker is valid and records nothing, so
// instrumented code needs no guards. Trackers are NOT safe for
// concurrent use; every worker owns its own and aggregation goes
// through Snapshots.
type Tracker struct {
	counts []int64
	hists  []*histState
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Add increments counter c by n. The nil receiver and a nil counter
// no-op.
func (t *Tracker) Add(c *Counter, n int64) {
	if t == nil || c == nil {
		return
	}
	if c.idx >= len(t.counts) {
		t.grow()
	}
	t.counts[c.idx] += n
}

// Inc is Add(c, 1): the per-step hot path.
func (t *Tracker) Inc(c *Counter) {
	if t == nil || c == nil {
		return
	}
	if c.idx >= len(t.counts) {
		t.grow()
	}
	t.counts[c.idx]++
}

// Observe records value v into histogram h.
func (t *Tracker) Observe(h *Histogram, v int64) {
	if t == nil || h == nil {
		return
	}
	if h.idx >= len(t.hists) {
		t.grow()
	}
	hs := t.hists[h.idx]
	if hs == nil {
		hs = &histState{counts: make([]int64, len(h.Buckets))}
		t.hists[h.idx] = hs
	}
	placed := false
	for i, ub := range h.Buckets {
		if v <= ub {
			hs.counts[i]++
			placed = true
			break
		}
	}
	if !placed {
		hs.overflow++
	}
	hs.count++
	hs.sum += v
}

// grow resizes the tracker's backing slices to the current registry
// size (counters registered after the tracker was created).
func (t *Tracker) grow() {
	regMu.Lock()
	nc, nh := len(counters), len(histograms)
	regMu.Unlock()
	for len(t.counts) < nc {
		t.counts = append(t.counts, 0)
	}
	for len(t.hists) < nh {
		t.hists = append(t.hists, nil)
	}
}

// HistValues is one histogram's snapshot.
type HistValues struct {
	// Buckets holds per-bucket counts aligned with the registered
	// bucket bounds (not cumulative).
	Buckets  []int64
	Overflow int64
	Count    int64
	Sum      int64
}

// Snapshot is a deterministic value copy of a tracker's state:
// non-zero counters by name plus histogram data by name. Snapshots of
// equal recorded work are deeply equal regardless of recording order.
type Snapshot struct {
	Counters   map[string]int64
	Histograms map[string]HistValues
}

// Snapshot copies the tracker's current state. A nil tracker yields an
// empty snapshot.
func (t *Tracker) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistValues{}}
	if t == nil {
		return s
	}
	regMu.Lock()
	cs := make([]*Counter, len(counters))
	copy(cs, counters)
	hs := make([]*Histogram, len(histograms))
	copy(hs, histograms)
	regMu.Unlock()
	for _, c := range cs {
		if c.idx < len(t.counts) && t.counts[c.idx] != 0 {
			s.Counters[c.Name] = t.counts[c.idx]
		}
	}
	for _, h := range hs {
		if h.idx >= len(t.hists) || t.hists[h.idx] == nil {
			continue
		}
		st := t.hists[h.idx]
		hv := HistValues{
			Buckets:  append([]int64(nil), st.counts...),
			Overflow: st.overflow,
			Count:    st.count,
			Sum:      st.sum,
		}
		s.Histograms[h.Name] = hv
	}
	return s
}

// Merge adds snapshot other into the tracker. Used by the campaign's
// in-order classification stage to fold per-task deltas into the
// campaign-level tracker; merging in task order keeps byte-identical
// renderings for any thread count.
func (t *Tracker) Merge(other Snapshot) {
	if t == nil {
		return
	}
	t.grow()
	regMu.Lock()
	cs := make([]*Counter, len(counters))
	copy(cs, counters)
	hs := make([]*Histogram, len(histograms))
	copy(hs, histograms)
	regMu.Unlock()
	for _, c := range cs {
		if v, ok := other.Counters[c.Name]; ok {
			t.counts[c.idx] += v
		}
	}
	for _, h := range hs {
		hv, ok := other.Histograms[h.Name]
		if !ok {
			continue
		}
		st := t.hists[h.idx]
		if st == nil {
			st = &histState{counts: make([]int64, len(h.Buckets))}
			t.hists[h.idx] = st
		}
		for i := range st.counts {
			if i < len(hv.Buckets) {
				st.counts[i] += hv.Buckets[i]
			}
		}
		st.overflow += hv.Overflow
		st.count += hv.Count
		st.sum += hv.Sum
	}
}

// Accumulate adds other into s, mutating s (maps are initialized on
// first use). Unlike Tracker.Merge it needs no registry — shard
// envelopes may in principle carry metric names this process never
// registered — so it is the primitive harness.Merge and the campaign
// service use to fold per-shard (or per-job) snapshots together.
// Histogram bucket slices are extended to the longer of the two.
func (s *Snapshot) Accumulate(other Snapshot) {
	if len(other.Counters) > 0 && s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	for name, v := range other.Counters {
		s.Counters[name] += v
	}
	if len(other.Histograms) > 0 && s.Histograms == nil {
		s.Histograms = map[string]HistValues{}
	}
	for name, hv := range other.Histograms {
		cur := s.Histograms[name]
		n := len(cur.Buckets)
		if len(hv.Buckets) > n {
			n = len(hv.Buckets)
		}
		merged := make([]int64, n)
		copy(merged, cur.Buckets)
		for i, c := range hv.Buckets {
			merged[i] += c
		}
		cur.Buckets = merged
		cur.Overflow += hv.Overflow
		cur.Count += hv.Count
		cur.Sum += hv.Sum
		s.Histograms[name] = cur
	}
}

// Diff returns the counter-wise difference s − older, dropping zero
// entries: the per-task delta used for traces. Histograms are not
// diffed (observations are per-task already) and are omitted.
func (s Snapshot) Diff(older Snapshot) Snapshot {
	out := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistValues{}}
	for name, v := range s.Counters {
		if d := v - older.Counters[name]; d != 0 {
			out.Counters[name] = d
		}
	}
	return out
}

// Counter returns a counter's value in the snapshot (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Names returns the sorted counter names present in the snapshot.
func (s Snapshot) Names() []string {
	out := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
