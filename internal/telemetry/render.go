package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// registeredHelp returns the help string for a metric name, consulting
// the registry ("" when unregistered — snapshots may carry names from
// another process in principle).
func registeredHelp(name string) string {
	regMu.Lock()
	defer regMu.Unlock()
	for _, c := range counters {
		if c.Name == name {
			return c.Help
		}
	}
	for _, h := range histograms {
		if h.Name == name {
			return h.Help
		}
	}
	return ""
}

func registeredBuckets(name string) []int64 {
	regMu.Lock()
	defer regMu.Unlock()
	for _, h := range histograms {
		if h.Name == name {
			return h.Buckets
		}
	}
	return nil
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format, sorted by metric name so equal snapshots render to identical
// bytes.
func WritePrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, name := range s.Names() {
		if help := registeredHelp(name); help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(bw, "# TYPE %s counter\n", name)
		fmt.Fprintf(bw, "%s %d\n", name, s.Counters[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		hv := s.Histograms[name]
		bounds := registeredBuckets(name)
		if help := registeredHelp(name); help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(bw, "# TYPE %s histogram\n", name)
		cum := int64(0)
		for i, c := range hv.Buckets {
			cum += c
			if i < len(bounds) {
				fmt.Fprintf(bw, "%s_bucket{le=\"%d\"} %d\n", name, bounds[i], cum)
			}
		}
		cum += hv.Overflow
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(bw, "%s_sum %d\n", name, hv.Sum)
		fmt.Fprintf(bw, "%s_count %d\n", name, hv.Count)
	}
	return bw.Flush()
}

// WriteSummary renders the snapshot as a human-readable table: one
// aligned "name value" row per counter plus count/sum/mean rows per
// histogram, sorted by name.
func WriteSummary(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	names := s.Names()
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
		if len(name) > width {
			width = len(name)
		}
	}
	sort.Strings(hnames)
	for _, n := range names {
		fmt.Fprintf(bw, "  %-*s %12d\n", width, n, s.Counters[n])
	}
	for _, n := range hnames {
		hv := s.Histograms[n]
		mean := int64(0)
		if hv.Count > 0 {
			mean = hv.Sum / hv.Count
		}
		fmt.Fprintf(bw, "  %-*s count=%d sum=%d mean=%d\n", width, n, hv.Count, hv.Sum, mean)
	}
	return bw.Flush()
}

// JSONLWriter streams records as JSON Lines: one Marshal per Emit,
// newline-terminated, first error sticky. The campaign trace uses one
// writer, fed only from the in-order classification stage, so the
// emitted byte stream is deterministic.
type JSONLWriter struct {
	w   *bufio.Writer
	err error
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{w: bufio.NewWriter(w)}
}

// Emit writes one record. Errors are sticky and surfaced by Close.
func (j *JSONLWriter) Emit(rec any) {
	if j == nil || j.err != nil {
		return
	}
	data, err := json.Marshal(rec)
	if err != nil {
		j.err = err
		return
	}
	if _, err := j.w.Write(append(data, '\n')); err != nil {
		j.err = err
	}
}

// Flush forces buffered records out to the underlying writer without
// closing: the campaign service calls it after each classified task so
// the trace endpoint streams records live instead of only at campaign
// end. Errors are sticky, like Emit's.
func (j *JSONLWriter) Flush() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// Close flushes and returns the first error encountered.
func (j *JSONLWriter) Close() error {
	if j == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}
