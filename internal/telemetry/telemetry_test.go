package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// Test metrics registered once for the whole package test binary.
var (
	tcA = NewCounter("test_alpha_total", "first test counter")
	tcB = NewCounter("test_beta_total", "second test counter")
	thA = NewHistogram("test_gamma_steps", "test histogram", []int64{10, 100, 1000})
)

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate counter registration did not panic")
		}
	}()
	NewCounter("test_alpha_total", "dup")
}

func TestDuplicateHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("histogram name clashing with a counter did not panic")
		}
	}()
	NewHistogram("test_beta_total", "dup", []int64{1})
}

func TestBadBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing buckets did not panic")
		}
	}()
	NewHistogram("test_bad_buckets", "dup", []int64{5, 5})
}

func TestNilTrackerNoOps(t *testing.T) {
	var tr *Tracker
	tr.Add(tcA, 3) // must not panic
	tr.Inc(tcA)
	tr.Observe(thA, 7)
	tr.Merge(Snapshot{Counters: map[string]int64{"test_alpha_total": 1}})
	s := tr.Snapshot()
	if len(s.Counters) != 0 || len(s.Histograms) != 0 {
		t.Fatalf("nil tracker snapshot not empty: %+v", s)
	}
}

func TestNilCounterNoOps(t *testing.T) {
	tr := NewTracker()
	tr.Add(nil, 3)
	tr.Inc(nil)
	tr.Observe(nil, 1)
	if s := tr.Snapshot(); len(s.Counters) != 0 {
		t.Fatalf("nil-counter add recorded something: %+v", s)
	}
}

// TestSnapshotDeterminism: the same recorded work, in any order and
// split across any number of trackers merged in any grouping, yields
// deeply equal snapshots.
func TestSnapshotDeterminism(t *testing.T) {
	one := NewTracker()
	one.Add(tcA, 5)
	one.Add(tcB, 2)
	one.Observe(thA, 50)
	one.Observe(thA, 5000)

	// Same totals, different order, via a merge of two trackers.
	p1, p2 := NewTracker(), NewTracker()
	p2.Observe(thA, 5000)
	p2.Add(tcB, 2)
	p1.Add(tcA, 1)
	p1.Observe(thA, 50)
	p1.Add(tcA, 4)
	merged := NewTracker()
	merged.Merge(p2.Snapshot())
	merged.Merge(p1.Snapshot())

	a, b := one.Snapshot(), merged.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots differ:\n%+v\n%+v", a, b)
	}

	// And the rendered bytes are identical too.
	var bufA, bufB bytes.Buffer
	if err := WritePrometheus(&bufA, a); err != nil {
		t.Fatal(err)
	}
	if err := WritePrometheus(&bufB, b); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatalf("renderings differ:\n%s\n%s", bufA.String(), bufB.String())
	}
}

func TestDiff(t *testing.T) {
	tr := NewTracker()
	tr.Add(tcA, 3)
	before := tr.Snapshot()
	tr.Add(tcA, 4)
	tr.Add(tcB, 1)
	d := tr.Snapshot().Diff(before)
	if d.Counters["test_alpha_total"] != 4 || d.Counters["test_beta_total"] != 1 {
		t.Fatalf("bad diff: %+v", d)
	}
	if len(d.Counters) != 2 {
		t.Fatalf("diff carries zero entries: %+v", d)
	}
}

func TestPrometheusFormat(t *testing.T) {
	tr := NewTracker()
	tr.Add(tcA, 7)
	tr.Observe(thA, 3)     // ≤10
	tr.Observe(thA, 400)   // ≤1000
	tr.Observe(thA, 99999) // +Inf
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_alpha_total counter",
		"test_alpha_total 7",
		"# TYPE test_gamma_steps histogram",
		`test_gamma_steps_bucket{le="10"} 1`,
		`test_gamma_steps_bucket{le="100"} 1`,
		`test_gamma_steps_bucket{le="1000"} 2`,
		`test_gamma_steps_bucket{le="+Inf"} 3`,
		"test_gamma_steps_sum 100402",
		"test_gamma_steps_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteSummary(t *testing.T) {
	tr := NewTracker()
	tr.Add(tcB, 42)
	tr.Observe(thA, 20)
	var buf bytes.Buffer
	if err := WriteSummary(&buf, tr.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "test_beta_total") || !strings.Contains(out, "42") {
		t.Errorf("summary missing counter row:\n%s", out)
	}
	if !strings.Contains(out, "count=1 sum=20 mean=20") {
		t.Errorf("summary missing histogram row:\n%s", out)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(10, 10, 4)
	want := []int64{10, 100, 1000, 10000}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
}

func TestJSONLWriter(t *testing.T) {
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	w.Emit(map[string]int{"a": 1})
	w.Emit(map[string]int{"b": 2})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "{\"a\":1}\n{\"b\":2}\n" {
		t.Fatalf("bad JSONL output: %q", buf.String())
	}
	var nilW *JSONLWriter
	nilW.Emit(1) // must not panic
	if err := nilW.Close(); err != nil {
		t.Fatal(err)
	}
}
