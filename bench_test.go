package yinyang

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see DESIGN.md §3 and EXPERIMENTS.md). The benchmarks
// exercise the same code paths as cmd/experiments with smaller fixed
// budgets so `go test -bench=.` regenerates every experiment's shape.

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/bugdb"
	"repro/internal/gen"
	"repro/internal/harness"
)

// BenchmarkFig7SeedGeneration regenerates the Figure 7 seed corpora
// (scaled), measuring seed-generation throughput.
func BenchmarkFig7SeedGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExperimentFig7(400)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig8Campaign runs the (scaled) main bug-finding campaign of
// Figures 8a–8c against both trunk SUTs. The body lives in
// internal/benchmarks so cmd/bench measures the identical workload.
func BenchmarkFig8Campaign(b *testing.B) { benchmarks.Fig8Campaign(b) }

// BenchmarkFig9Survey tabulates the historic survey (Figure 9).
func BenchmarkFig9Survey(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range bugdb.SUTs {
			if rows := harness.ExperimentFig9(s); len(rows) == 0 {
				b.Fatal("empty survey")
			}
		}
	}
}

// BenchmarkFig10Releases maps campaign findings onto release trains
// (Figure 10).
func BenchmarkFig10Releases(b *testing.B) {
	f, err := harness.ExperimentFig8(harness.CampaignBudget{
		Iterations: 40, SeedPool: 10, Seed: 1, Threads: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := harness.ExperimentFig10(bugdb.Z3Sim, f.Z3)
		if len(rows) != len(bugdb.Releases(bugdb.Z3Sim)) {
			b.Fatal("bad row count")
		}
	}
}

// BenchmarkFig11Coverage measures Benchmark-vs-YinYang probe coverage
// (Figure 11) on two representative logics.
func BenchmarkFig11Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExperimentFig11(harness.CoverageBudget{
			Seeds: 8, Fused: 15, Seed: int64(i + 1),
			Logics: []gen.Logic{gen.QFNRA, gen.QFS},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkFig12CoverageArms adds the ConcatFuzz arm (Figure 12).
func BenchmarkFig12CoverageArms(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExperimentFig12(harness.CoverageBudget{
			Seeds: 6, Fused: 10, Seed: int64(i + 1),
			Logics: []gen.Logic{gen.QFS},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 2 {
			b.Fatalf("rows = %d", len(rows))
		}
	}
}

// BenchmarkRQ4Retrigger replays ConcatFuzz on YinYang bug ancestors.
func BenchmarkRQ4Retrigger(b *testing.B) {
	res, err := harness.Run(harness.Campaign{
		SUT: bugdb.Z3Sim, Iterations: 40, SeedPool: 10, Seed: 7, Threads: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := harness.ExperimentRQ4(bugdb.Z3Sim, res.Bugs, 5, int64(i+1))
		if err != nil {
			b.Fatal(err)
		}
		if out.Retriggered > out.Bugs {
			b.Fatal("impossible retrigger count")
		}
	}
}

// BenchmarkThroughputSingleThreaded measures end-to-end fused tests per
// second in single-threaded mode — the paper reports 41.5 tests/s.
// ns/op here is the cost of ONE fused test (generate pair + fuse +
// solve), so tests/s = 1e9 / (ns/op).
func BenchmarkThroughputSingleThreaded(b *testing.B) { benchmarks.ThroughputSingleThreaded(b) }

// BenchmarkThroughputInstrumented is the same workload with telemetry
// counters armed; the delta to the plain benchmark is the
// instrumentation overhead cmd/bench gates.
func BenchmarkThroughputInstrumented(b *testing.B) { benchmarks.ThroughputInstrumented(b) }

// BenchmarkFusionOnly isolates the fusion engine's cost (Algorithm 2
// without the solver).
func BenchmarkFusionOnly(b *testing.B) { benchmarks.FusionOnly(b) }

// BenchmarkSolverReference measures the reference solver on a fixed mix
// of generated formulas across logics.
func BenchmarkSolverReference(b *testing.B) { benchmarks.SolverReference(b) }

// BenchmarkParsePrint measures the SMT-LIB front end round trip.
func BenchmarkParsePrint(b *testing.B) { benchmarks.ParsePrint(b) }

// BenchmarkAblationFusionFns runs the fusion-function family ablation
// at a small budget (DESIGN.md §5).
func BenchmarkAblationFusionFns(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := harness.ExperimentAblationFusionFns(harness.CampaignBudget{
			Iterations: 15, SeedPool: 8, Seed: int64(i + 1), Threads: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatal("bad ablation rows")
		}
	}
}
