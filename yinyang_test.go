package yinyang_test

// Facade-level integration tests: exercise the public API exactly the
// way README.md and the examples do.

import (
	"math/rand"
	"strings"
	"testing"

	yinyang "repro"
	"repro/internal/core"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	g, err := yinyang.NewGenerator(yinyang.QF_LIA, 1)
	if err != nil {
		t.Fatal(err)
	}
	phi1, phi2 := g.Sat(), g.Sat()
	fused, err := yinyang.Fuse(phi1, phi2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if fused.Oracle != yinyang.StatusSat {
		t.Fatalf("oracle = %v", fused.Oracle)
	}
	ref := yinyang.NewReferenceSolver()
	res := yinyang.Solve(ref, fused.Script)
	if res.Crashed {
		t.Fatalf("reference crashed: %s", res.CrashMsg)
	}
	if res.Result.String() == "unsat" {
		t.Fatalf("reference unsound on sat fusion")
	}
}

func TestFacadeParsePrint(t *testing.T) {
	src := `(set-logic QF_S)
(declare-fun a () String)
(assert (str.prefixof "x" a))
(check-sat)
`
	sc, err := yinyang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := yinyang.Print(sc); got != src {
		t.Errorf("print:\n%s\nwant:\n%s", got, src)
	}
}

func TestFacadeSUTVersions(t *testing.T) {
	if _, err := yinyang.NewSUT(yinyang.Z3Sim, "4.8.5"); err != nil {
		t.Fatal(err)
	}
	if _, err := yinyang.NewSUT(yinyang.CVC4Sim, "nope"); err == nil {
		t.Error("bad release accepted")
	}
}

func TestFacadeCampaignSmoke(t *testing.T) {
	res, err := yinyang.RunCampaign(yinyang.Campaign{
		SUT:        yinyang.Z3Sim,
		Logics:     []yinyang.Logic{yinyang.QF_LRA},
		Iterations: 25,
		SeedPool:   8,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tests == 0 {
		t.Error("no tests executed")
	}
	if res.ReferenceDisagreements != 0 {
		t.Errorf("reference disagreements: %d", res.ReferenceDisagreements)
	}
}

func TestFacadeReduce(t *testing.T) {
	sc, err := yinyang.Parse(`
(declare-fun x () Int)
(assert (> x 0))
(assert (< x 100))
(assert (= (div x 0) 0))
(check-sat)
`)
	if err != nil {
		t.Fatal(err)
	}
	out := yinyang.ReduceScript(sc, func(c *yinyang.Script) bool {
		return strings.Contains(yinyang.Print(c), "div")
	})
	if len(out.Asserts()) != 1 {
		t.Errorf("reduced to %d asserts:\n%s", len(out.Asserts()), yinyang.Print(out))
	}
}

func TestFacadeConcatBaseline(t *testing.T) {
	g, _ := yinyang.NewGenerator(yinyang.QF_LIA, 9)
	u1, u2 := g.Unsat(), g.Unsat()
	fused, err := yinyang.Concat(u1, u2, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if fused.Oracle != core.StatusUnsat {
		t.Errorf("concat oracle = %v", fused.Oracle)
	}
	if len(fused.Triplets) != 0 {
		t.Error("ConcatFuzz must not fuse variables")
	}
}

func TestFacadeFuseWithSynthesizedTable(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	table := core.SynthesizeTable(rng, 2)
	g, _ := yinyang.NewGenerator(yinyang.QF_LRA, 13)
	fused, err := yinyang.FuseWith(g.Sat(), g.Sat(), rng, yinyang.FusionOptions{Table: table})
	if err != nil {
		t.Fatal(err)
	}
	if fused.Witness == nil {
		t.Fatal("no witness")
	}
}
