// Command genseeds emits seed corpora of known satisfiability per
// logic, as .smt2 files — the stand-in for downloading the SMT-LIB and
// StringFuzz benchmark suites.
//
// Usage:
//
//	genseeds [-logic QF_S] [-n 20] [-seed 1] [-status both] -out dir/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/smtlib"
)

func main() {
	logicFlag := flag.String("logic", "", "logic (default: all)")
	n := flag.Int("n", 20, "seeds per status per logic")
	seed := flag.Int64("seed", 1, "random seed")
	status := flag.String("status", "both", "sat, unsat, or both")
	out := flag.String("out", "", "output directory (required)")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: genseeds [-logic L] [-n N] [-seed S] [-status sat|unsat|both] -out dir/")
		os.Exit(2)
	}

	logics := gen.AllLogics
	if *logicFlag != "" {
		logics = []gen.Logic{gen.Logic(*logicFlag)}
	}
	for _, logic := range logics {
		g, err := gen.New(logic, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		dir := filepath.Join(*out, string(logic))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		emit := func(st core.Status, label string) {
			for i := 0; i < *n; i++ {
				s := g.Generate(st)
				name := filepath.Join(dir, fmt.Sprintf("%s-%03d.smt2", label, i))
				body := fmt.Sprintf("(set-info :status %s)\n%s", st, smtlib.Print(s.Script))
				if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
					os.Exit(1)
				}
			}
		}
		if *status == "sat" || *status == "both" {
			emit(core.StatusSat, "sat")
		}
		if *status == "unsat" || *status == "both" {
			emit(core.StatusUnsat, "unsat")
		}
		fmt.Printf("%s: wrote seeds to %s\n", logic, dir)
	}
}
