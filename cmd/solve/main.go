// Command solve runs the reference solver — or a simulated
// solver-under-test release — on an SMT-LIB file and prints sat /
// unsat / unknown (and optionally a model), mimicking the command-line
// contract of the solvers the paper tests.
//
// Usage:
//
//	solve [-sut z3sim|cvc4sim] [-release trunk] [-fuel N] [-model] [-validate] [-expect V] [-stats] file.smt2
//	solve -incremental [flags] a.smt2 b.smt2 ...
//
// A solve that exhausts its deterministic step budget prints "timeout",
// the analogue of a real solver hitting its time limit.
//
// -expect compares the verdict against V and exits 3 on mismatch. V is
// normalized by the same parser the cross-check backends use on
// external solver output, so it tolerates case, CRLF, surrounding
// whitespace, and `;` comment lines — a captured solver transcript can
// be passed verbatim.
//
// With -incremental, each script is pushed as an assertion frame on
// top of the previous ones and checked — script k's verdict is for the
// conjunction of scripts 1..k. One solver instance serves the whole
// sequence, so later checks reuse learned clauses, the warm simplex
// tableau, and the rewrite/eval caches; a final "; reuse:" line
// reports the session's structural reuse and -stats adds the push/pop
// and warm-hit counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ast"
	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/eval"
	"repro/internal/harness"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

func main() {
	sutName := flag.String("sut", "", "simulated solver under test (z3sim or cvc4sim); empty = reference solver")
	release := flag.String("release", "trunk", "SUT release version")
	showModel := flag.Bool("model", false, "print the model on sat")
	validate := flag.Bool("validate", false, "on sat, evaluate the model against the input asserts; exit 3 if it fails")
	expect := flag.String("expect", "", "expected verdict (sat/unsat/unknown/timeout, any case/decoration); exit 3 on mismatch")
	stats := flag.Bool("stats", false, "print the solve's step-counter summary (decisions, pivots, DFS nodes, …) to stderr")
	fuel := flag.Int64("fuel", 0, "deterministic step budget (0 = default, negative = unlimited)")
	incremental := flag.Bool("incremental", false, "treat the arguments as a sequence of scripts: push each as an assertion frame, check after every one, and reuse solver state throughout")
	flag.Parse()
	if flag.NArg() != 1 && !(*incremental && flag.NArg() >= 1) {
		fmt.Fprintln(os.Stderr, "usage: solve [-sut z3sim|cvc4sim] [-release R] [-fuel N] [-model] file.smt2\n       solve -incremental [flags] a.smt2 b.smt2 ...")
		os.Exit(2)
	}

	lim := solver.DefaultLimits()
	if *fuel > 0 {
		lim.Fuel = *fuel
	} else if *fuel < 0 {
		lim.Fuel = 0
	}
	var tr *telemetry.Tracker
	if *stats {
		tr = telemetry.NewTracker()
	}
	var s *solver.Solver
	if *sutName == "" {
		s = solver.New(solver.Config{Limits: lim, Telemetry: tr})
	} else {
		defects, err := bugdb.DefectsIn(bugdb.SUT(*sutName), *release)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		s = solver.New(solver.Config{Defects: defects, Limits: lim, Telemetry: tr})
	}

	defer func() {
		if r := recover(); r != nil {
			// Crash defects surface the way real solver crashes do.
			fmt.Fprintln(os.Stderr, r)
			os.Exit(139)
		}
	}()

	if *incremental {
		runIncremental(s, tr, flag.Args(), *showModel)
		return
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	script, err := smtlib.ParseScript(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse error:", err)
		os.Exit(1)
	}

	out := s.SolveScript(script)
	fmt.Println(out.Result)
	if (out.Result == solver.ResUnknown || out.Result == solver.ResTimeout) && out.Reason != "" {
		fmt.Fprintln(os.Stderr, "; reason:", out.Reason)
	}
	if *stats {
		if err := telemetry.WriteSummary(os.Stderr, tr.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *showModel && out.Result == solver.ResSat {
		printModel(out.Model)
	}
	if *validate && out.Result == solver.ResSat {
		if ok, reason := harness.ValidateModel(script, out.Model); !ok {
			fmt.Fprintln(os.Stderr, "; invalid model:", reason)
			os.Exit(3)
		}
	}
	if *expect != "" {
		want, ok := backend.ParseVerdict(*expect)
		if !ok {
			fmt.Fprintf(os.Stderr, "error: -expect %q contains no verdict token\n", *expect)
			os.Exit(2)
		}
		if got := backend.FromResult(out.Result); got != want {
			fmt.Fprintf(os.Stderr, "; expected %s, got %s\n", want, got)
			os.Exit(3)
		}
	}
}

// printModel prints a sat model in define-fun form, names sorted.
func printModel(model eval.Model) {
	var names []string
	for name := range model {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Println("(")
	for _, name := range names {
		fmt.Printf("  (define-fun %s () %s %s)\n", name, model[name].Sort(), model[name])
	}
	fmt.Println(")")
}

// runIncremental drives the multi-script session: every script becomes
// one assertion frame, checked cumulatively, with per-script verdicts
// on stdout and the session's reuse summary on stderr.
func runIncremental(s *solver.Solver, tr *telemetry.Tracker, paths []string, showModel bool) {
	// One symbol table for the whole session: a script may use
	// functions declared by any earlier script.
	decls := map[string]ast.Sort{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		script, err := smtlib.ParseScriptWith(string(data), decls)
		if err != nil {
			fmt.Fprintf(os.Stderr, "parse error in %s: %v\n", path, err)
			os.Exit(1)
		}
		s.Push()
		var out solver.Outcome
		if err := s.Assert(script.Asserts()...); err != nil {
			out = solver.Outcome{Result: solver.ResUnknown, Reason: err.Error()}
		} else {
			out = s.Check()
		}
		fmt.Printf("%s: %s\n", path, out.Result)
		if (out.Result == solver.ResUnknown || out.Result == solver.ResTimeout) && out.Reason != "" {
			fmt.Fprintln(os.Stderr, "; reason:", out.Reason)
		}
		if showModel && out.Result == solver.ResSat {
			printModel(out.Model)
		}
	}
	st := s.Reuse()
	fmt.Fprintf(os.Stderr, "; reuse: frames=%d asserts=%d learned=%d atoms=%d tableau_vars=%d\n",
		st.Frames, st.LiveAsserts, st.LearnedLive, st.AtomsLive, st.TableauAtoms)
	if tr != nil {
		if err := telemetry.WriteSummary(os.Stderr, tr.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
}
