// Command solve runs the reference solver — or a simulated
// solver-under-test release — on an SMT-LIB file and prints sat /
// unsat / unknown (and optionally a model), mimicking the command-line
// contract of the solvers the paper tests.
//
// Usage:
//
//	solve [-sut z3sim|cvc4sim] [-release trunk] [-fuel N] [-model] [-validate] [-stats] file.smt2
//
// A solve that exhausts its deterministic step budget prints "timeout",
// the analogue of a real solver hitting its time limit.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/bugdb"
	"repro/internal/harness"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

func main() {
	sutName := flag.String("sut", "", "simulated solver under test (z3sim or cvc4sim); empty = reference solver")
	release := flag.String("release", "trunk", "SUT release version")
	showModel := flag.Bool("model", false, "print the model on sat")
	validate := flag.Bool("validate", false, "on sat, evaluate the model against the input asserts; exit 3 if it fails")
	stats := flag.Bool("stats", false, "print the solve's step-counter summary (decisions, pivots, DFS nodes, …) to stderr")
	fuel := flag.Int64("fuel", 0, "deterministic step budget (0 = default, negative = unlimited)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: solve [-sut z3sim|cvc4sim] [-release R] [-fuel N] [-model] file.smt2")
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	script, err := smtlib.ParseScript(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse error:", err)
		os.Exit(1)
	}

	lim := solver.DefaultLimits()
	if *fuel > 0 {
		lim.Fuel = *fuel
	} else if *fuel < 0 {
		lim.Fuel = 0
	}
	var tr *telemetry.Tracker
	if *stats {
		tr = telemetry.NewTracker()
	}
	var s *solver.Solver
	if *sutName == "" {
		s = solver.New(solver.Config{Limits: lim, Telemetry: tr})
	} else {
		defects, err := bugdb.DefectsIn(bugdb.SUT(*sutName), *release)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		s = solver.New(solver.Config{Defects: defects, Limits: lim, Telemetry: tr})
	}

	defer func() {
		if r := recover(); r != nil {
			// Crash defects surface the way real solver crashes do.
			fmt.Fprintln(os.Stderr, r)
			os.Exit(139)
		}
	}()
	out := s.SolveScript(script)
	fmt.Println(out.Result)
	if (out.Result == solver.ResUnknown || out.Result == solver.ResTimeout) && out.Reason != "" {
		fmt.Fprintln(os.Stderr, "; reason:", out.Reason)
	}
	if *stats {
		if err := telemetry.WriteSummary(os.Stderr, tr.Snapshot()); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	}
	if *showModel && out.Result == solver.ResSat {
		var names []string
		for name := range out.Model {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("(")
		for _, name := range names {
			fmt.Printf("  (define-fun %s () %s %s)\n", name, out.Model[name].Sort(), out.Model[name])
		}
		fmt.Println(")")
	}
	if *validate && out.Result == solver.ResSat {
		if ok, reason := harness.ValidateModel(script, out.Model); !ok {
			fmt.Fprintln(os.Stderr, "; invalid model:", reason)
			os.Exit(3)
		}
	}
}
