// Command yinyang is the fuzzer CLI: it runs the paper's Algorithm 1
// against a simulated solver under test, reporting deduplicated bug
// findings, and can dump the reduced bug-triggering formulas.
//
// Usage:
//
//	yinyang [-sut z3sim] [-release trunk] [-logics QF_S,QF_NRA]
//	        [-iters 200] [-pool 20] [-seed 1] [-threads 1]
//	        [-mode fusion|mutate|both|wild] [-nomodelcheck]
//	        [-oracle known|majority|metamorphic|auto] [-quorum 2]
//	        [-concat] [-outdir bugs/] [-artifacts artifacts/]
//	        [-fuel 10000000] [-walltimeout 0]
//	        [-backend cvc4sim@1.5] [-backend 'z3=/usr/bin/z3 -in']
//	        [-backend-timeout 10s] [-backend-retries 2] [-backend-breaker 5]
//	        [-metrics metrics.prom] [-trace trace.jsonl]
//	        [-checkpoint cp.json] [-stop-after N] [-shard I/K]
//	        [-envelope env.json] [-fingerprint fp.json]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	yinyang -merge [-artifacts merged/] [-metrics m.prom] [-trace t.jsonl]
//	        [-fingerprint fp.json] envelope.json...
//	yinyang -serve :8080 [-spool dir] [-spool-retain N]
//
// The repeatable -backend flag layers a differential cross-check
// oracle over the campaign. Two forms are accepted:
//
//	sut[@release]        — a hermetic in-process backend (z3sim or
//	    cvc4sim), deterministic and thread-count invariant
//	name=/path [args]    — an external SMT-LIB solver binary, driven
//	    over stdin/stdout under fault containment: per-invocation
//	    deadline, retry with backoff, circuit breaker. A persistently
//	    failing binary is quarantined and the campaign completes in
//	    degraded mode, reported per backend and via exit status 4.
//
// The -oracle flag picks the consensus policy for tasks whose ground
// truth is unknown (semantic fusion normally knows the answer by
// construction; -mode wild and skipped model checks do not):
//
//	known        — classify only against the constructed ground truth;
//	    unknown-status tasks are never cross-checked (the default, and
//	    the paper's oracle).
//	majority     — fold every definite verdict (SUT included, as the
//	    pseudo-voter "sut") into a majority vote; voters outvoted by a
//	    consensus of at least -quorum definite votes are reported as
//	    majority-disagreement findings.
//	metamorphic  — derive a relation-preserving variant of each
//	    unknown-status formula and flag verdict pairs that violate the
//	    relation (each voter checked against itself).
//	auto         — majority and metamorphic combined.
//
// Campaign lifecycle flags:
//
//	-checkpoint path     durable pause/resume. If the file exists the
//	    campaign resumes from it (campaign-shape flags are ignored —
//	    the checkpoint carries the config); otherwise a fresh campaign
//	    starts and, if paused, checkpoints there. -stop-after N pauses
//	    after N classified tasks. A paused run exits 3.
//	-shard I/K           run shard I of K (task ids ≡ I mod K); pair
//	    with -envelope and fold the K envelopes with -merge.
//	-envelope path       write the completed campaign's sealed result
//	    envelope (the -merge input).
//	-fingerprint path    write the canonical result fingerprint, a
//	    byte-comparable serialization of everything observed.
//	-merge               fold shard envelopes (positional args) into
//	    one campaign result; -artifacts names the merged bundle dir.
//	-serve addr          run the campaign control-plane HTTP service;
//	    -spool makes jobs durable across restarts; -spool-retain N
//	    caps the terminal (done/failed) job history — running and
//	    paused jobs are never collected.
//
// Exit status: 0 success, 1 campaign or I/O error, 2 flag misuse,
// 3 paused at a checkpoint, 4 completed in degraded mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/bugdb"
	"repro/internal/harness"
	"repro/internal/reduce"
	"repro/internal/service"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// Exit codes; see the package comment.
const (
	exitOK       = 0
	exitError    = 1
	exitUsage    = 2
	exitPaused   = 3
	exitDegraded = 4
)

// backendFlags collects the repeatable -backend values.
type backendFlags []string

func (b *backendFlags) String() string { return strings.Join(*b, ",") }

func (b *backendFlags) Set(v string) error {
	*b = append(*b, v)
	return nil
}

// parseBackendConfig turns one -backend value into a serializable
// backend config. "sut[@release]" selects a hermetic in-process
// backend; "name=/path [args]" an external solver binary under process
// supervision.
func parseBackendConfig(v string, fuel int64, timeout time.Duration, retries, breaker int) (harness.BackendConfig, error) {
	if name, cmdline, ok := strings.Cut(v, "="); ok {
		name = strings.TrimSpace(name)
		argv := strings.Fields(cmdline)
		if name == "" || len(argv) == 0 {
			return harness.BackendConfig{}, fmt.Errorf("backend %q: want name=/path/to/solver [args]", v)
		}
		if retries == 0 {
			// The config treats 0 as "unset, use the default"; at the
			// CLI an explicit 0 means no retries.
			retries = -1
		}
		return harness.BackendConfig{Process: &harness.ProcessBackendConfig{
			Name:    name,
			Path:    argv[0],
			Args:    argv[1:],
			Timeout: timeout,
			Retries: retries,
			Breaker: breaker,
		}}, nil
	}
	sut, release, _ := strings.Cut(v, "@")
	switch bugdb.SUT(sut) {
	case bugdb.Z3Sim, bugdb.CVC4Sim:
		return harness.BackendConfig{Sim: &harness.SimBackendConfig{
			SUT: sut, Release: release, Fuel: fuel,
		}}, nil
	}
	return harness.BackendConfig{}, fmt.Errorf("backend %q: not a simulated solver (z3sim, cvc4sim) and no =/path given", v)
}

// parseShard parses "I/K".
func parseShard(v string) (shard, shards int, err error) {
	if v == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(v, "%d/%d", &shard, &shards); err != nil {
		return 0, 0, fmt.Errorf("shard %q: want I/K (e.g. 0/4)", v)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("shard %q: want 0 <= I < K", v)
	}
	return shard, shards, nil
}

func main() {
	os.Exit(run())
}

func run() int {
	sutName := flag.String("sut", "z3sim", "solver under test (z3sim or cvc4sim)")
	release := flag.String("release", "trunk", "SUT release")
	logicsFlag := flag.String("logics", "", "comma-separated logics (default: all)")
	iters := flag.Int("iters", 200, "fused tests per logic")
	pool := flag.Int("pool", 20, "seeds per status per logic")
	seed := flag.Int64("seed", 1, "random seed")
	threads := flag.Int("threads", 1, "parallel workers")
	mode := flag.String("mode", "fusion", "test derivation: fusion, mutate, both (interleaved), or wild (unknown ground truth)")
	noModelCheck := flag.Bool("nomodelcheck", false, "disable the model-validation oracle on sat verdicts")
	oracle := flag.String("oracle", "known", "consensus policy for unknown-status tasks: known, majority, metamorphic, or auto")
	quorum := flag.Int("quorum", 0, "minimum definite votes for a majority consensus (0 = default 2)")
	concat := flag.Bool("concat", false, "ConcatFuzz baseline (no variable fusion)")
	fuel := flag.Int64("fuel", 0, "deterministic step budget per solve (0 = solver default, negative = unlimited)")
	wallTimeout := flag.Duration("walltimeout", 0, "wall-clock watchdog per solve (0 = off); cut-off runs are quarantined, and results stop being thread-count invariant")
	artifacts := flag.String("artifacts", "", "persist replayable reproducer bundles under this directory (with -merge: the merged bundle directory)")
	metricsPath := flag.String("metrics", "", "write a Prometheus-text metrics snapshot here and print a summary table")
	tracePath := flag.String("trace", "", "write a JSONL per-task event trace here (appended to when resuming)")
	outdir := flag.String("outdir", "", "write reduced bug-triggering formulas here")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the campaign here")
	memprofile := flag.String("memprofile", "", "write an allocation profile here at exit")
	var backends backendFlags
	flag.Var(&backends, "backend", "cross-check backend: sut[@release] (hermetic) or name=/path [args] (external binary); repeatable")
	backendTimeout := flag.Duration("backend-timeout", 10*time.Second, "per-invocation wall-clock deadline for external backends")
	backendRetries := flag.Int("backend-retries", 2, "transient-failure retries per external backend check (0 = none)")
	backendBreaker := flag.Int("backend-breaker", 5, "consecutive hard failures before an external backend is quarantined")
	checkpointPath := flag.String("checkpoint", "", "checkpoint file: resume from it if it exists, write it on pause")
	stopAfter := flag.Int("stop-after", 0, "pause the campaign after this many classified tasks (writes -checkpoint, exits 3)")
	shardSpec := flag.String("shard", "", "run one shard, as I/K (task ids congruent to I mod K)")
	envelopePath := flag.String("envelope", "", "write the completed campaign's sealed result envelope here")
	fingerprintPath := flag.String("fingerprint", "", "write the canonical result fingerprint here (byte-comparable across resumed/sharded runs)")
	merge := flag.Bool("merge", false, "merge shard envelopes (positional arguments) into one campaign result")
	serveAddr := flag.String("serve", "", "run the campaign service on this address instead of a one-shot campaign")
	spoolDir := flag.String("spool", "", "with -serve: persist jobs under this directory, reloading them on restart")
	spoolRetain := flag.Int("spool-retain", 0, "with -serve -spool: keep at most N terminal (done/failed) jobs, 0 = keep all")
	flag.Parse()

	if *serveAddr != "" {
		return runServe(*serveAddr, *spoolDir, *spoolRetain)
	}
	if *merge {
		return runMerge(flag.Args(), *artifacts, *metricsPath, *tracePath, *fingerprintPath, *outdir, *fuel)
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "error: unexpected arguments %q (positional arguments are only envelopes, with -merge)\n", flag.Args())
		return exitUsage
	}

	shard, shards, err := parseShard(*shardSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return exitUsage
	}

	cc := harness.CampaignConfig{
		SUT:               *sutName,
		Release:           *release,
		Iterations:        *iters,
		SeedPool:          *pool,
		Seed:              *seed,
		Threads:           *threads,
		Mode:              *mode,
		Oracle:            *oracle,
		Quorum:            *quorum,
		DisableModelCheck: *noModelCheck,
		ConcatOnly:        *concat,
		Fuel:              *fuel,
		WallTimeout:       *wallTimeout,
		ArtifactDir:       *artifacts,
		Shard:             shard,
		Shards:            shards,
	}
	if *logicsFlag != "" {
		for _, l := range strings.Split(*logicsFlag, ",") {
			cc.Logics = append(cc.Logics, strings.TrimSpace(l))
		}
	}
	for _, v := range backends {
		bc, err := parseBackendConfig(v, *fuel, *backendTimeout, *backendRetries, *backendBreaker)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return exitError
		}
		cc.Backends = append(cc.Backends, bc)
	}

	// A checkpoint on disk takes over the campaign's identity: the
	// shape flags above are ignored in favor of the recorded config.
	var cp *harness.Checkpoint
	resuming := false
	if *checkpointPath != "" {
		if data, err := os.ReadFile(*checkpointPath); err == nil {
			cp, err = harness.DecodeCheckpoint(data)
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				return exitError
			}
			resuming = true
		} else if !os.IsNotExist(err) {
			fmt.Fprintln(os.Stderr, "checkpoint:", err)
			return exitError
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return exitError
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			return exitError
		}
		defer pprof.StopCPUProfile()
	}

	var tracker *telemetry.Tracker
	if *metricsPath != "" {
		tracker = telemetry.NewTracker()
	}
	// trace stays a nil interface when -trace is unset: assigning a nil
	// *os.File into the io.Writer field would read as "tracing on" to
	// the harness. Resumed campaigns append — each leg emits only its
	// new records, so the file accumulates the whole campaign's trace.
	var trace io.Writer
	var traceFile *os.File
	if *tracePath != "" {
		mode := os.O_WRONLY | os.O_CREATE | os.O_TRUNC
		if resuming {
			mode = os.O_WRONLY | os.O_CREATE | os.O_APPEND
		}
		f, err := os.OpenFile(*tracePath, mode, 0o644)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return exitError
		}
		traceFile = f
		trace = f
	}

	opt := harness.RunOptions{
		Telemetry: tracker,
		Trace:     trace,
		Threads:   *threads,
		StopAfter: *stopAfter,
	}
	var out *harness.Outcome
	if resuming {
		out, err = harness.Resume(cp, opt)
	} else {
		out, err = harness.Start(cc, opt)
	}
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: %w", cerr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		return exitError
	}
	if tracker != nil {
		if werr := writeMetrics(*metricsPath, tracker.Snapshot()); werr != nil {
			fmt.Fprintln(os.Stderr, "metrics:", werr)
			return exitError
		}
	}
	if *fingerprintPath != "" {
		if werr := os.WriteFile(*fingerprintPath, out.Result.Fingerprint(), 0o644); werr != nil {
			fmt.Fprintln(os.Stderr, "fingerprint:", werr)
			return exitError
		}
	}

	if out.Paused {
		if *checkpointPath == "" {
			fmt.Fprintln(os.Stderr, "error: campaign paused but no -checkpoint file to write (the pause state is lost)")
			return exitError
		}
		data, err := harness.EncodeCheckpoint(out.Checkpoint)
		if err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint:", err)
			return exitError
		}
		if err := os.WriteFile(*checkpointPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "checkpoint:", err)
			return exitError
		}
		total := out.Checkpoint.Config.ShardTaskCount()
		fmt.Printf("paused: %d/%d tasks classified; checkpoint written to %s (rerun with the same -checkpoint to continue)\n",
			out.Checkpoint.Done, total, *checkpointPath)
		pprof.StopCPUProfile() // a no-op when profiling is off
		return exitPaused
	}

	if *envelopePath != "" {
		data, err := harness.EncodeEnvelope(out.Envelope)
		if err != nil {
			fmt.Fprintln(os.Stderr, "envelope:", err)
			return exitError
		}
		if err := os.WriteFile(*envelopePath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "envelope:", err)
			return exitError
		}
	}
	printResult(out.Result, *artifacts, *outdir, *fuel)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return exitError
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return exitError
		}
	}

	if out.Result.Degraded() {
		// Exit 4 distinguishes "completed but degraded" from usage and
		// campaign errors.
		pprof.StopCPUProfile()
		return exitDegraded
	}
	return exitOK
}

// runServe runs the campaign control-plane HTTP service until the
// process is killed.
func runServe(addr, spool string, retain int) int {
	srv, err := service.NewWithRetention(spool, retain)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return exitError
	}
	fmt.Printf("yinyang campaign service listening on %s", addr)
	if spool != "" {
		fmt.Printf(" (spooling jobs under %s)", spool)
	}
	fmt.Println()
	if err := http.ListenAndServe(addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "serve:", err)
		return exitError
	}
	return exitOK
}

// runMerge folds shard envelopes into one campaign result.
func runMerge(paths []string, artifactsDir, metricsPath, tracePath, fingerprintPath, outdir string, fuel int64) int {
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "error: -merge needs envelope files as positional arguments")
		return exitUsage
	}
	var envs []*harness.Envelope
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merge:", err)
			return exitError
		}
		env, err := harness.DecodeEnvelope(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "merge: %s: %v\n", p, err)
			return exitError
		}
		envs = append(envs, env)
	}
	m, err := harness.Merge(envs, artifactsDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merge:", err)
		return exitError
	}
	if metricsPath != "" {
		if err := writeMetrics(metricsPath, m.Telemetry); err != nil {
			fmt.Fprintln(os.Stderr, "metrics:", err)
			return exitError
		}
	}
	if tracePath != "" {
		if err := os.WriteFile(tracePath, m.Trace, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			return exitError
		}
	}
	if fingerprintPath != "" {
		if err := os.WriteFile(fingerprintPath, m.Result.Fingerprint(), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fingerprint:", err)
			return exitError
		}
	}
	printResult(m.Result, artifactsDir, outdir, fuel)
	if m.Result.Degraded() {
		return exitDegraded
	}
	return exitOK
}

// printResult prints the human-readable campaign report: the summary
// line, findings, backend reports, and warnings. Identical for direct,
// resumed, and merged runs — the determinism suites diff this output.
func printResult(res *harness.Result, artifactsDir, outdir string, fuel int64) {
	fmt.Printf("tests: %d   unknowns: %d   timeouts: %d   bugs: %d   duplicates: %d   invalid-inputs: %d   quarantined: %d\n",
		res.Tests, res.Unknowns, res.Timeouts, len(res.Bugs), res.Duplicates, res.InvalidInputs, res.Quarantined)
	if res.OracleVotes > 0 || res.OracleConsensus > 0 || res.OracleAbstained > 0 {
		fmt.Printf("oracle majority: votes: %d   consensus: %d   abstained: %d   sut-outvoted: %d\n",
			res.OracleVotes, res.OracleConsensus, res.OracleAbstained, res.SutOutvoted)
	}
	if res.MetamorphicPairs > 0 || res.MetamorphicSkips > 0 {
		fmt.Printf("oracle metamorphic: pairs: %d   skips: %d   sut-violations: %d\n",
			res.MetamorphicPairs, res.MetamorphicSkips, res.SutViolations)
	}
	if len(res.Artifacts) > 0 {
		fmt.Printf("artifacts: %d bundles under %s\n", len(res.Artifacts), artifactsDir)
	}
	if res.InvalidInputs > 0 {
		fmt.Printf("WARNING: %d fused scripts rejected by the static verification gate (fusion defect?)\n",
			res.InvalidInputs)
	}
	if res.ReferenceDisagreements > 0 {
		fmt.Printf("WARNING: %d oracle disagreements without a defect (reference solver bug?)\n",
			res.ReferenceDisagreements)
	}
	for _, b := range res.Bugs {
		entry, _ := bugdb.Find(b.Defect)
		fmt.Printf("  [%s] %-32s logic=%-10s oracle=%-5v observed=%-7v  %s\n",
			b.Kind, b.Defect, b.Logic, b.Oracle, b.Observed, entry.Description)
		if outdir != "" {
			writeReduced(outdir, b, fuel)
		}
	}
	for _, rep := range res.Backends {
		state := "ok"
		if rep.Quarantined {
			state = "QUARANTINED"
		}
		fmt.Printf("backend %-20s checks: %d   sat/unsat/unknown: %d/%d/%d   timeouts: %d   crashes: %d   garbled: %d   retries: %d   disagreements: %d   skipped: %d   [%s]\n",
			rep.Name, rep.Checks, rep.Sat, rep.Unsat, rep.Unknowns,
			rep.Timeouts, rep.Crashes, rep.Garbled, rep.Retries,
			rep.Disagreements, rep.Skipped, state)
	}
	for _, f := range res.BackendFindings {
		fmt.Printf("  [backend-%s] %-20s logic=%-10s oracle=%-5s observed=%-11s %s\n",
			f.Kind, f.Backend, f.Logic, f.Oracle, f.Observed, f.Reason)
	}
	if res.Degraded() {
		fmt.Println("WARNING: campaign completed in degraded mode: one or more backends quarantined by the circuit breaker")
	}
}

// writeMetrics persists the Prometheus-text snapshot and prints the
// human-readable summary table.
func writeMetrics(path string, snap telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("telemetry:")
	return telemetry.WriteSummary(os.Stdout, snap)
}

// writeReduced reduces the bug-triggering script (keeping the same
// defect firing with the same misbehaviour) and writes it out. The
// reduction solver runs under the same fuel limit as the campaign so a
// Performance finding's timeout signature survives shrinking.
func writeReduced(dir string, b harness.Bug, fuel int64) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "outdir:", err)
		return
	}
	entry, _ := bugdb.Find(b.Defect)
	lim := solver.DefaultLimits()
	if fuel > 0 {
		lim.Fuel = fuel
	} else if fuel < 0 {
		lim.Fuel = 0
	}
	sut, err := bugdb.NewSolverWithLimits(entry.SUT, "trunk", nil, lim)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduce:", err)
		return
	}
	ref := solver.NewReference()
	interesting := func(c *smtlib.Script) bool {
		run := harness.RunSolver(sut, c)
		switch b.Kind {
		case bugdb.Crash:
			return run.Crashed && fired(run.DefectsFired, b.Defect)
		case bugdb.Soundness:
			if run.Result != b.Observed || !fired(run.DefectsFired, b.Defect) {
				return false
			}
			// Keep the wrongness: the reference must decide the opposite.
			refOut := ref.SolveScript(c)
			return refOut.Result != solver.ResUnknown && refOut.Result != b.Observed
		case bugdb.InvalidModel:
			if run.Result != solver.ResSat || !fired(run.DefectsFired, b.Defect) {
				return false
			}
			valid, _ := harness.ValidateModel(c, run.Model)
			return !valid
		default:
			// Performance: fuel exhaustion (or unknown, with the meter
			// disabled) with the same defect firing.
			return (run.Result == solver.ResTimeout || run.Result == solver.ResUnknown) &&
				fired(run.DefectsFired, b.Defect)
		}
	}
	script := b.Script
	if interesting(script) {
		script = reduce.Reduce(script, interesting, reduce.Options{MaxChecks: 400})
	}
	name := filepath.Join(dir, fmt.Sprintf("%s.smt2", b.Defect))
	if err := os.WriteFile(name, []byte(smtlib.Print(script)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
	}
}

func fired(ds []solver.Defect, d solver.Defect) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}
