// Command yinyang is the fuzzer CLI: it runs the paper's Algorithm 1
// against a simulated solver under test, reporting deduplicated bug
// findings, and can dump the reduced bug-triggering formulas.
//
// Usage:
//
//	yinyang [-sut z3sim] [-release trunk] [-logics QF_S,QF_NRA]
//	        [-iters 200] [-pool 20] [-seed 1] [-threads 1]
//	        [-mode fusion|mutate|both] [-nomodelcheck]
//	        [-concat] [-outdir bugs/] [-artifacts artifacts/]
//	        [-fuel 10000000] [-walltimeout 0]
//	        [-backend cvc4sim@1.5] [-backend 'z3=/usr/bin/z3 -in']
//	        [-backend-timeout 10s] [-backend-retries 2] [-backend-breaker 5]
//	        [-metrics metrics.prom] [-trace trace.jsonl]
//	        [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// The repeatable -backend flag layers a differential cross-check
// oracle over the campaign. Two forms are accepted:
//
//	sut[@release]        — a hermetic in-process backend (z3sim or
//	    cvc4sim), deterministic and thread-count invariant
//	name=/path [args]    — an external SMT-LIB solver binary, driven
//	    over stdin/stdout under fault containment: per-invocation
//	    deadline, retry with backoff, circuit breaker. A persistently
//	    failing binary is quarantined and the campaign completes in
//	    degraded mode, reported per backend and via exit status 4.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/backend"
	"repro/internal/bugdb"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/reduce"
	"repro/internal/smtlib"
	"repro/internal/solver"
	"repro/internal/telemetry"
)

// backendFlags collects the repeatable -backend values.
type backendFlags []string

func (b *backendFlags) String() string { return strings.Join(*b, ",") }

func (b *backendFlags) Set(v string) error {
	*b = append(*b, v)
	return nil
}

// parseBackendSpec turns one -backend value into a Spec. "sut[@release]"
// selects a hermetic in-process backend; "name=/path [args]" an
// external solver binary under process supervision.
func parseBackendSpec(v string, fuel int64, timeout time.Duration, retries, breaker int) (backend.Spec, error) {
	if name, cmdline, ok := strings.Cut(v, "="); ok {
		name = strings.TrimSpace(name)
		argv := strings.Fields(cmdline)
		if name == "" || len(argv) == 0 {
			return backend.Spec{}, fmt.Errorf("backend %q: want name=/path/to/solver [args]", v)
		}
		if retries == 0 {
			// The config treats 0 as "unset, use the default"; at the
			// CLI an explicit 0 means no retries.
			retries = -1
		}
		return backend.ProcessSpec(backend.ProcessConfig{
			Name:             name,
			Path:             argv[0],
			Args:             argv[1:],
			Timeout:          timeout,
			Retries:          retries,
			BreakerThreshold: breaker,
		}), nil
	}
	sut, release, _ := strings.Cut(v, "@")
	switch bugdb.SUT(sut) {
	case bugdb.Z3Sim, bugdb.CVC4Sim:
		return harness.SimBackendSpec(bugdb.SUT(sut), release, fuel), nil
	}
	return backend.Spec{}, fmt.Errorf("backend %q: not a simulated solver (z3sim, cvc4sim) and no =/path given", v)
}

func main() {
	sutName := flag.String("sut", "z3sim", "solver under test (z3sim or cvc4sim)")
	release := flag.String("release", "trunk", "SUT release")
	logicsFlag := flag.String("logics", "", "comma-separated logics (default: all)")
	iters := flag.Int("iters", 200, "fused tests per logic")
	pool := flag.Int("pool", 20, "seeds per status per logic")
	seed := flag.Int64("seed", 1, "random seed")
	threads := flag.Int("threads", 1, "parallel workers")
	mode := flag.String("mode", "fusion", "test derivation: fusion, mutate, or both (interleaved)")
	noModelCheck := flag.Bool("nomodelcheck", false, "disable the model-validation oracle on sat verdicts")
	concat := flag.Bool("concat", false, "ConcatFuzz baseline (no variable fusion)")
	fuel := flag.Int64("fuel", 0, "deterministic step budget per solve (0 = solver default, negative = unlimited)")
	wallTimeout := flag.Duration("walltimeout", 0, "wall-clock watchdog per solve (0 = off); cut-off runs are quarantined, and results stop being thread-count invariant")
	artifacts := flag.String("artifacts", "", "persist replayable reproducer bundles under this directory")
	metricsPath := flag.String("metrics", "", "write a Prometheus-text metrics snapshot here and print a summary table")
	tracePath := flag.String("trace", "", "write a JSONL per-task event trace here")
	outdir := flag.String("outdir", "", "write reduced bug-triggering formulas here")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the campaign here")
	memprofile := flag.String("memprofile", "", "write an allocation profile here at exit")
	var backends backendFlags
	flag.Var(&backends, "backend", "cross-check backend: sut[@release] (hermetic) or name=/path [args] (external binary); repeatable")
	backendTimeout := flag.Duration("backend-timeout", 10*time.Second, "per-invocation wall-clock deadline for external backends")
	backendRetries := flag.Int("backend-retries", 2, "transient-failure retries per external backend check (0 = none)")
	backendBreaker := flag.Int("backend-breaker", 5, "consecutive hard failures before an external backend is quarantined")
	flag.Parse()

	var backendSpecs []backend.Spec
	for _, v := range backends {
		spec, err := parseBackendSpec(v, *fuel, *backendTimeout, *backendRetries, *backendBreaker)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		backendSpecs = append(backendSpecs, spec)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	var logics []gen.Logic
	if *logicsFlag != "" {
		for _, l := range strings.Split(*logicsFlag, ",") {
			logics = append(logics, gen.Logic(strings.TrimSpace(l)))
		}
	}
	if *threads <= 0 {
		// Mirror the harness clamp so usage output and derived tooling
		// see the effective worker count.
		*threads = 1
	}

	var tracker *telemetry.Tracker
	if *metricsPath != "" {
		tracker = telemetry.NewTracker()
	}
	// trace stays a nil interface when -trace is unset: assigning a nil
	// *os.File into the io.Writer field would read as "tracing on" to
	// the harness.
	var trace io.Writer
	var traceFile *os.File
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "trace:", err)
			os.Exit(1)
		}
		traceFile = f
		trace = f
	}

	res, err := harness.Run(harness.Campaign{
		SUT:               bugdb.SUT(*sutName),
		Release:           *release,
		Logics:            logics,
		Iterations:        *iters,
		SeedPool:          *pool,
		Seed:              *seed,
		Threads:           *threads,
		Mode:              harness.CampaignMode(*mode),
		DisableModelCheck: *noModelCheck,
		ConcatOnly:        *concat,
		Fuel:              *fuel,
		WallTimeout:       *wallTimeout,
		ArtifactDir:       *artifacts,
		Backends:          backendSpecs,
		Telemetry:         tracker,
		Trace:             trace,
	})
	if traceFile != nil {
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("trace: %w", cerr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	if tracker != nil {
		if werr := writeMetrics(*metricsPath, tracker.Snapshot()); werr != nil {
			fmt.Fprintln(os.Stderr, "metrics:", werr)
			os.Exit(1)
		}
	}

	fmt.Printf("tests: %d   unknowns: %d   timeouts: %d   bugs: %d   duplicates: %d   invalid-inputs: %d   quarantined: %d\n",
		res.Tests, res.Unknowns, res.Timeouts, len(res.Bugs), res.Duplicates, res.InvalidInputs, res.Quarantined)
	if len(res.Artifacts) > 0 {
		fmt.Printf("artifacts: %d bundles under %s\n", len(res.Artifacts), *artifacts)
	}
	if res.InvalidInputs > 0 {
		fmt.Printf("WARNING: %d fused scripts rejected by the static verification gate (fusion defect?)\n",
			res.InvalidInputs)
	}
	if res.ReferenceDisagreements > 0 {
		fmt.Printf("WARNING: %d oracle disagreements without a defect (reference solver bug?)\n",
			res.ReferenceDisagreements)
	}
	for _, b := range res.Bugs {
		entry, _ := bugdb.Find(b.Defect)
		fmt.Printf("  [%s] %-32s logic=%-10s oracle=%-5v observed=%-7v  %s\n",
			b.Kind, b.Defect, b.Logic, b.Oracle, b.Observed, entry.Description)
		if *outdir != "" {
			writeReduced(*outdir, b, *fuel)
		}
	}
	for _, rep := range res.Backends {
		state := "ok"
		if rep.Quarantined {
			state = "QUARANTINED"
		}
		fmt.Printf("backend %-20s checks: %d   sat/unsat/unknown: %d/%d/%d   timeouts: %d   crashes: %d   garbled: %d   retries: %d   disagreements: %d   skipped: %d   [%s]\n",
			rep.Name, rep.Checks, rep.Sat, rep.Unsat, rep.Unknowns,
			rep.Timeouts, rep.Crashes, rep.Garbled, rep.Retries,
			rep.Disagreements, rep.Skipped, state)
	}
	for _, f := range res.BackendFindings {
		fmt.Printf("  [backend-%s] %-20s logic=%-10s oracle=%-5s observed=%-11s %s\n",
			f.Kind, f.Backend, f.Logic, f.Oracle, f.Observed, f.Reason)
	}
	if res.Degraded() {
		fmt.Println("WARNING: campaign completed in degraded mode: one or more backends quarantined by the circuit breaker")
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // materialize up-to-date allocation statistics
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			os.Exit(1)
		}
	}

	if res.Degraded() {
		// Exit 4 distinguishes "completed but degraded" from usage and
		// campaign errors. os.Exit skips defers, so flush the CPU profile
		// explicitly (a no-op when profiling is off).
		pprof.StopCPUProfile()
		os.Exit(4)
	}
}

// writeMetrics persists the Prometheus-text snapshot and prints the
// human-readable summary table.
func writeMetrics(path string, snap telemetry.Snapshot) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, snap); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Println("telemetry:")
	return telemetry.WriteSummary(os.Stdout, snap)
}

// writeReduced reduces the bug-triggering script (keeping the same
// defect firing with the same misbehaviour) and writes it out. The
// reduction solver runs under the same fuel limit as the campaign so a
// Performance finding's timeout signature survives shrinking.
func writeReduced(dir string, b harness.Bug, fuel int64) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "outdir:", err)
		return
	}
	entry, _ := bugdb.Find(b.Defect)
	lim := solver.DefaultLimits()
	if fuel > 0 {
		lim.Fuel = fuel
	} else if fuel < 0 {
		lim.Fuel = 0
	}
	sut, err := bugdb.NewSolverWithLimits(entry.SUT, "trunk", nil, lim)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reduce:", err)
		return
	}
	ref := solver.NewReference()
	interesting := func(c *smtlib.Script) bool {
		run := harness.RunSolver(sut, c)
		switch b.Kind {
		case bugdb.Crash:
			return run.Crashed && fired(run.DefectsFired, b.Defect)
		case bugdb.Soundness:
			if run.Result != b.Observed || !fired(run.DefectsFired, b.Defect) {
				return false
			}
			// Keep the wrongness: the reference must decide the opposite.
			refOut := ref.SolveScript(c)
			return refOut.Result != solver.ResUnknown && refOut.Result != b.Observed
		case bugdb.InvalidModel:
			if run.Result != solver.ResSat || !fired(run.DefectsFired, b.Defect) {
				return false
			}
			valid, _ := harness.ValidateModel(c, run.Model)
			return !valid
		default:
			// Performance: fuel exhaustion (or unknown, with the meter
			// disabled) with the same defect firing.
			return (run.Result == solver.ResTimeout || run.Result == solver.ResUnknown) &&
				fired(run.DefectsFired, b.Defect)
		}
	}
	script := b.Script
	if interesting(script) {
		script = reduce.Reduce(script, interesting, reduce.Options{MaxChecks: 400})
	}
	name := filepath.Join(dir, fmt.Sprintf("%s.smt2", b.Defect))
	if err := os.WriteFile(name, []byte(smtlib.Print(script)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
	}
}

func fired(ds []solver.Defect, d solver.Defect) bool {
	for _, x := range ds {
		if x == d {
			return true
		}
	}
	return false
}
