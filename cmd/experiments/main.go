// Command experiments regenerates every table and figure of the
// paper's evaluation (Section 4) against the simulated solvers under
// test. Each experiment prints rows shaped like the paper's; the
// expected correspondence is documented in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-fig 7|8|9|10|11|12] [-rq 4] [-ablation fusionfns|occprob] [-all]
//	            [-iters N] [-seed S] [-threads T] [-scale K]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bugdb"
	"repro/internal/harness"
)

func main() {
	fig := flag.String("fig", "", "figure to regenerate (7, 8, 9, 10, 11, 12)")
	rq := flag.String("rq", "", "research question to regenerate (4)")
	ablation := flag.String("ablation", "", "ablation to run (fusionfns, occprob)")
	all := flag.Bool("all", false, "run everything")
	iters := flag.Int("iters", 250, "campaign iterations per logic")
	seed := flag.Int64("seed", 1, "random seed")
	threads := flag.Int("threads", 4, "parallel workers")
	scale := flag.Int("scale", 100, "figure 7 corpus scale divisor")
	covSeeds := flag.Int("cov-seeds", 15, "coverage experiment: seeds per corpus")
	covFused := flag.Int("cov-fused", 30, "coverage experiment: fused formulas per arm")
	flag.Parse()

	budget := harness.CampaignBudget{Iterations: *iters, Seed: *seed, Threads: *threads}
	covBudget := harness.CoverageBudget{Seeds: *covSeeds, Fused: *covFused, Seed: *seed}

	ran := false
	want := func(name string) bool {
		return *all || *fig == name
	}

	// The Figure 8 campaign also feeds Figures 9, 10 and RQ4.
	var fig8 *harness.Fig8
	needCampaign := *all || *fig == "8" || *fig == "9" || *fig == "10" || *rq == "4"
	if needCampaign {
		var err error
		fig8, err = harness.ExperimentFig8(budget)
		die(err)
	}

	if want("7") {
		ran = true
		rows, err := harness.ExperimentFig7(*scale)
		die(err)
		fmt.Printf("=== Figure 7: seed corpora (paper counts / %d) ===\n%s\n", *scale, harness.RenderFig7(rows))
	}
	if want("8") {
		ran = true
		fmt.Printf("=== Figure 8: campaign bug counts (%d iterations/logic) ===\n%s\n", *iters, harness.RenderFig8(fig8))
	}
	if want("9") {
		ran = true
		fmt.Println("=== Figure 9: historic soundness bugs per year ===")
		for _, s := range bugdb.SUTs {
			fmt.Print(harness.RenderFig9(s, harness.ExperimentFig9(s)))
		}
		found := 0
		for _, b := range fig8.Z3.Bugs {
			if b.Kind == bugdb.Soundness {
				found++
			}
		}
		fmt.Printf("z3sim: campaign found %d soundness bugs vs %d historic (%.0f%%)\n",
			found, bugdb.HistoricTotals(bugdb.Z3Sim), 100*float64(found)/float64(bugdb.HistoricTotals(bugdb.Z3Sim)))
		found = 0
		for _, b := range fig8.CVC4.Bugs {
			if b.Kind == bugdb.Soundness {
				found++
			}
		}
		fmt.Printf("cvc4sim: campaign found %d soundness bugs vs %d historic (%.0f%%)\n\n",
			found, bugdb.HistoricTotals(bugdb.CVC4Sim), 100*float64(found)/float64(bugdb.HistoricTotals(bugdb.CVC4Sim)))
	}
	if want("10") {
		ran = true
		fmt.Println("=== Figure 10: found soundness bugs affecting each release ===")
		fmt.Print(harness.RenderFig10(bugdb.Z3Sim, harness.ExperimentFig10(bugdb.Z3Sim, fig8.Z3)))
		fmt.Print(harness.RenderFig10(bugdb.CVC4Sim, harness.ExperimentFig10(bugdb.CVC4Sim, fig8.CVC4)))
		fmt.Println()
	}
	if want("11") {
		ran = true
		rows, err := harness.ExperimentFig11(covBudget)
		die(err)
		fmt.Printf("=== Figure 11: coverage, Benchmark (B) vs YinYang (Y) ===\n%s\n", harness.RenderFig11(rows))
	}
	if want("12") {
		ran = true
		rows, err := harness.ExperimentFig12(covBudget)
		die(err)
		fmt.Printf("=== Figure 12: coverage averaged over logics ===\n%s\n", harness.RenderFig12(rows))
	}
	if *all || *rq == "4" {
		ran = true
		res, err := harness.ExperimentRQ4(bugdb.Z3Sim, fig8.Z3.Bugs, 10, *seed)
		die(err)
		fmt.Printf("=== RQ4: ConcatFuzz retrigger ===\nConcatFuzz retriggered %d of %d YinYang bugs (paper: 5 of 50)\n\n",
			res.Retriggered, res.Bugs)
	}
	if *all || *ablation == "fusionfns" {
		ran = true
		rows, err := harness.ExperimentAblationFusionFns(budget)
		die(err)
		fmt.Println("=== Ablation: fusion-function families (z3sim bug yield) ===")
		for _, r := range rows {
			fmt.Printf("  %-20s %d bugs\n", r.Name, r.Bugs)
		}
		fmt.Println()
	}
	if *all || *ablation == "synth" {
		ran = true
		rows, err := harness.ExperimentAblationSynth(budget)
		die(err)
		fmt.Println("=== Ablation: synthesized fusion functions (z3sim bug yield) ===")
		for _, r := range rows {
			fmt.Printf("  %-20s %d bugs\n", r.Name, r.Bugs)
		}
		fmt.Println()
	}
	if *all || *ablation == "occprob" {
		ran = true
		rows, err := harness.ExperimentAblationOccProb(budget)
		die(err)
		fmt.Println("=== Ablation: inversion replacement probability (z3sim bug yield) ===")
		for _, r := range rows {
			fmt.Printf("  %-20s %d bugs\n", r.Name, r.Bugs)
		}
		fmt.Println()
	}

	if !ran {
		fmt.Fprintln(os.Stderr, "nothing selected: pass -all, -fig N, -rq 4, or -ablation NAME")
		os.Exit(2)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
