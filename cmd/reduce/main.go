// Command reduce shrinks a bug-triggering SMT-LIB file while a chosen
// solver-under-test keeps misbehaving on it — the C-Reduce step of the
// paper's workflow.
//
// Usage:
//
//	reduce -sut z3sim [-release trunk] -expect sat|unsat|crash file.smt2
//
// -expect is the WRONG observation to preserve (e.g. the SUT answers
// sat although the formula's oracle is unsat).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bugdb"
	"repro/internal/harness"
	"repro/internal/reduce"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

func main() {
	sutName := flag.String("sut", "z3sim", "solver under test")
	release := flag.String("release", "trunk", "SUT release")
	expect := flag.String("expect", "", "observation to preserve: sat, unsat, or crash")
	checks := flag.Int("checks", 1000, "max interestingness checks")
	flag.Parse()
	if flag.NArg() != 1 || *expect == "" {
		fmt.Fprintln(os.Stderr, "usage: reduce -sut S -expect sat|unsat|crash file.smt2")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	script, err := smtlib.ParseScript(string(data))
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse error:", err)
		os.Exit(1)
	}
	sut, err := bugdb.NewSolver(bugdb.SUT(*sutName), *release, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	// For soundness observations the shrink must preserve the
	// *wrongness*, not just the answer: the defect-free reference
	// solver has to decide the opposite (otherwise delta debugging
	// happily reduces "answers sat" to the empty — trivially sat —
	// script).
	ref := solver.NewReference()
	interesting := func(c *smtlib.Script) bool {
		run := harness.RunSolver(sut, c)
		switch *expect {
		case "crash":
			return run.Crashed
		case "sat":
			if run.Crashed || run.Result != solver.ResSat {
				return false
			}
			refOut := ref.SolveScript(c)
			return refOut.Result == solver.ResUnsat
		case "unsat":
			if run.Crashed || run.Result != solver.ResUnsat {
				return false
			}
			refOut := ref.SolveScript(c)
			return refOut.Result == solver.ResSat
		}
		return false
	}
	if !interesting(script) {
		fmt.Fprintln(os.Stderr, "input does not exhibit the expected observation")
		os.Exit(1)
	}
	out := reduce.Reduce(script, interesting, reduce.Options{MaxChecks: *checks})
	fmt.Print(smtlib.Print(out))
}
