// Command bench is the benchmark-regression harness: it runs the
// shared benchmark bodies (internal/benchmarks), writes a BENCH_<n>.json
// perf-trajectory file (ns/op, bytes/op, allocs/op, tests per second),
// and gates against the previous file — a throughput drop beyond the
// tolerance fails the run, making every PR's speedup or regression
// visible.
//
// Usage:
//
//	go run ./cmd/bench                 # full suite, writes BENCH_<n+1>.json
//	go run ./cmd/bench -short          # fast benchmarks only (CI gate)
//	go run ./cmd/bench -o /tmp/b.json  # explicit output path
//	go run ./cmd/bench -write=false    # gate only, write nothing
//
// The gate compares only benchmarks present in both the new run and the
// baseline, so a -short run gates cleanly against a committed full run.
// Fast benchmarks are measured at a fixed op count (every run executes
// the identical deterministic workload sequence — adaptive iteration
// counts would hand each run a different stream prefix whose mix
// difference dwarfs real regressions), best-of-3 with rounds
// interleaved across the suite: on a shared host, ambient noise only
// inflates a round, so the minimum is the stable statistic, a real
// regression still shows in every round, and interleaving keeps one
// noise burst off all of a benchmark's rounds. Each report also records the ns/op of a fixed calibration
// workload (benchmarks.Calibrate); the gate divides out the
// baseline/current speed drift it measures, so a host that is slower
// today than when the baseline was recorded doesn't read as a code
// regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/benchmarks"
)

type benchStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// OpsPerSec is 1e9/ns_per_op — for ThroughputSingleThreaded this is
	// the paper's fused tests per second.
	OpsPerSec float64 `json:"ops_per_sec"`
}

type report struct {
	Timestamp  string                `json:"timestamp"`
	GoVersion  string                `json:"go_version"`
	NumCPU     int                   `json:"num_cpu"`
	Mode       string                `json:"mode"`
	Benchmarks map[string]benchStats `json:"benchmarks"`
	// InstrumentationOverhead is the fractional throughput cost of armed
	// telemetry counters: 1 − instrumented/plain ops/s, measured within
	// this run (negative values are benchmark noise).
	InstrumentationOverhead *float64 `json:"instrumentation_overhead,omitempty"`
	// CalibNsPerOp is the best-of-5 ns/op of the fixed calibration
	// workload (benchmarks.Calibrate), the run's measured machine speed.
	// The gate scales throughput comparisons by baseline/current so a
	// shared host's speed drift between runs doesn't read as a code
	// regression.
	CalibNsPerOp float64 `json:"calib_ns_per_op,omitempty"`
}

var benchFilePat = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

func main() {
	short := flag.Bool("short", false, "run only the fast benchmarks with a reduced benchtime (CI mode)")
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json files (baseline lookup and default output)")
	out := flag.String("o", "", "explicit output path (default: next BENCH_<n>.json in -dir)")
	write := flag.Bool("write", true, "write the result file (false: gate only)")
	// Wall-clock throughput on a shared host keeps ~±25% phase noise
	// even after fixed op counts, best-of-3, and speed normalization
	// (the drift doesn't fully show in the calibration workload), so
	// the time gate is deliberately wide — the deterministic allocs/op
	// gate below is the precise tripwire, and the step-based telemetry
	// counters carry exact work accounting.
	tolerance := flag.Float64("tolerance", 0.40, "max allowed fractional ops/sec regression vs baseline (wall-clock, noise-tolerant)")
	allocTolerance := flag.Float64("alloc-tolerance", 0.10, "max allowed fractional allocs/op growth vs baseline (deterministic at fixed op counts)")
	overheadTol := flag.Float64("overhead-tolerance", 0.03, "max allowed fractional telemetry instrumentation overhead (plain vs instrumented throughput)")
	benchtime := flag.String("benchtime", "", "benchtime for the slow (non-Fast) benchmarks (default 1s); fast benchmarks always run a fixed op count")
	flag.Parse()

	testing.Init()
	bt := *benchtime
	if bt == "" {
		bt = "1s"
	}
	// Fast benchmarks run a FIXED op count, never an adaptive benchtime:
	// their bodies replay a deterministic workload stream from a fixed
	// seed, so ns/op depends on which prefix of the stream the run
	// covers. Adaptive iteration counts hand every run a different
	// prefix and the mix difference dwarfs real regressions (the same
	// reason measureOverhead pins its op count); a fixed count makes
	// every measurement — recording and gating alike — execute the
	// identical work.
	const fastOps = "1000x"

	mode := "full"
	if *short {
		mode = "short"
	}
	rep := report{
		//golint:allow wall-clock — the benchmark report is stamped with real time by design; nothing downstream branches on it
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Mode:       mode,
		Benchmarks: map[string]benchStats{},
	}

	// Fast benchmarks run best-of-3 with the rounds interleaved across
	// the whole suite: on a shared host, ambient noise only ever
	// inflates a round, while a real regression shows up in every one
	// (same rationale as measureOverhead) — and interleaving spreads one
	// benchmark's rounds out in time so a several-second noise burst (a
	// GC or intern-sweep storm included) can't land on all of them. The
	// slow campaign benchmarks amortize noise over their long runs and
	// get one round.
	const rounds = 3
	for r := 0; r < rounds; r++ {
		for _, e := range benchmarks.All {
			if *short && !e.Fast {
				if r == 0 {
					fmt.Printf("%-28s skipped (-short)\n", e.Name)
				}
				continue
			}
			if !e.Fast && r > 0 {
				continue
			}
			tm := fastOps
			if !e.Fast {
				tm = bt
			}
			if err := flag.Lookup("test.benchtime").Value.Set(tm); err != nil {
				fatal(err)
			}
			// Collect garbage left by the previous benchmark (dead interned
			// terms in particular) so measurements don't bleed into each
			// other.
			runtime.GC()
			res := testing.Benchmark(e.Fn)
			if res.N == 0 {
				fatal(fmt.Errorf("benchmark %s did not run", e.Name))
			}
			ns := float64(res.T.Nanoseconds()) / float64(res.N)
			if cur, ok := rep.Benchmarks[e.Name]; !ok || ns < cur.NsPerOp {
				rep.Benchmarks[e.Name] = benchStats{
					NsPerOp:     ns,
					BytesPerOp:  res.AllocedBytesPerOp(),
					AllocsPerOp: res.AllocsPerOp(),
					OpsPerSec:   1e9 / ns,
				}
			}
		}
	}
	for _, e := range benchmarks.All {
		st, ok := rep.Benchmarks[e.Name]
		if !ok {
			continue
		}
		fmt.Printf("%-28s %12.0f ns/op %10d allocs/op %12.1f ops/s\n",
			e.Name, st.NsPerOp, st.AllocsPerOp, st.OpsPerSec)
	}

	if inc, okI := rep.Benchmarks["SolverIncremental"]; okI {
		if cold, okC := rep.Benchmarks["SolverIncrementalCold"]; okC && inc.NsPerOp > 0 {
			fmt.Printf("incremental speedup: %.2fx over cold re-solve\n", cold.NsPerOp/inc.NsPerOp)
		}
	}

	rep.CalibNsPerOp = measureCalibration()
	fmt.Printf("cpu calibration: %.2f ms/op\n", rep.CalibNsPerOp/1e6)

	overhead := measureOverhead(*short)
	rep.InstrumentationOverhead = &overhead
	overheadFail := ""
	fmt.Printf("instrumentation overhead: %.2f%% (tolerance %.0f%%)\n",
		overhead*100, *overheadTol*100)
	if overhead > *overheadTol {
		overheadFail = fmt.Sprintf(
			"telemetry instrumentation overhead %.2f%% exceeds %.0f%%",
			overhead*100, *overheadTol*100)
	}

	baseline, baseName, err := latestBaseline(*dir)
	if err != nil {
		fatal(err)
	}

	if *write {
		path := *out
		if path == "" {
			path = filepath.Join(*dir, nextBenchName(*dir))
		}
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	var failures []string
	if overheadFail != "" {
		failures = append(failures, overheadFail)
	}
	if baseline == nil {
		fmt.Println("no baseline BENCH_<n>.json: baseline gate skipped")
	} else {
		// Environment fingerprint: cross-machine (or cross-toolchain)
		// comparisons are not perf regressions, so flag them loudly before
		// the gate verdict is read as one.
		for _, w := range fingerprintDiff(rep, *baseline) {
			fmt.Printf("WARNING: %s — environment changed, comparison unreliable\n", w)
		}
		// Speed drift: on a shared host the machine the baseline was
		// recorded on is effectively a different machine from the one
		// gating now, even when the fingerprint matches. The calibration
		// workload measures that drift so the gate can divide it out.
		drift := 1.0
		if baseline.CalibNsPerOp > 0 && rep.CalibNsPerOp > 0 {
			drift = rep.CalibNsPerOp / baseline.CalibNsPerOp
			if drift > 1.05 || drift < 0.95 {
				fmt.Printf("cpu calibration drift: this run measures %.2fx %s than the baseline run; gate normalized\n",
					maxf(drift, 1/drift), map[bool]string{true: "slower", false: "faster"}[drift > 1])
			}
		}
		fmt.Printf("gating against %s (time tolerance %.0f%%, alloc tolerance %.0f%%)\n",
			baseName, *tolerance*100, *allocTolerance*100)
		failures = append(failures, gate(rep, *baseline, *tolerance, *allocTolerance, drift)...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Println("bench gate passed")
}

// measureOverhead estimates the throughput cost of armed telemetry
// counters as 1 − plain/instrumented time per op. Both benchmarks run
// at the same fixed op count so they execute the identical workload
// sequence (the main loop's adaptive iteration counts would hand each
// a different slice of the deterministic stream and drown the
// few-percent delta in mix differences). The pair is interleaved over
// several rounds and the minimum overhead is kept: ambient machine
// noise only ever inflates a round, while a real regression shows up
// in every one.
func measureOverhead(short bool) float64 {
	rounds, ops := 5, "600x"
	if short {
		rounds, ops = 3, "300x"
	}
	if err := flag.Lookup("test.benchtime").Value.Set(ops); err != nil {
		fatal(err)
	}
	run := func(fn func(*testing.B)) float64 {
		runtime.GC()
		res := testing.Benchmark(fn)
		if res.N == 0 {
			fatal(fmt.Errorf("overhead benchmark did not run"))
		}
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	best := math.Inf(1)
	for r := 0; r < rounds; r++ {
		plain := run(benchmarks.ThroughputSingleThreaded)
		instr := run(benchmarks.ThroughputInstrumented)
		if overhead := 1 - plain/instr; overhead < best {
			best = overhead
		}
	}
	return best
}

// measureCalibration returns the best-of-5 ns/op of the fixed
// calibration workload. Best-of for the same reason as everywhere else
// in this file: contention only ever inflates a round, so the minimum
// is the machine's repeatable speed.
func measureCalibration() float64 {
	if err := flag.Lookup("test.benchtime").Value.Set("20x"); err != nil {
		fatal(err)
	}
	best := math.Inf(1)
	for r := 0; r < 5; r++ {
		runtime.GC()
		res := testing.Benchmark(benchmarks.Calibrate)
		if res.N == 0 {
			fatal(fmt.Errorf("calibration benchmark did not run"))
		}
		if ns := float64(res.T.Nanoseconds()) / float64(res.N); ns < best {
			best = ns
		}
	}
	return best
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// latestBaseline loads the highest-numbered BENCH_<n>.json in dir.
func latestBaseline(dir string) (*report, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	best, bestName := -1, ""
	for _, e := range entries {
		m := benchFilePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err == nil && n > best {
			best, bestName = n, e.Name()
		}
	}
	if best < 0 {
		return nil, "", nil
	}
	buf, err := os.ReadFile(filepath.Join(dir, bestName))
	if err != nil {
		return nil, "", err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, "", fmt.Errorf("%s: %w", bestName, err)
	}
	return &rep, bestName, nil
}

func nextBenchName(dir string) string {
	entries, _ := os.ReadDir(dir)
	next := 1
	for _, e := range entries {
		if m := benchFilePat.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
				next = n + 1
			}
		}
	}
	return fmt.Sprintf("BENCH_%d.json", next)
}

// fingerprintDiff compares the environment facts recorded in both
// reports and describes every mismatch. A differing CPU count or Go
// toolchain means the baseline numbers were produced by a different
// machine shape, so throughput deltas say nothing about the code.
func fingerprintDiff(cur, base report) []string {
	var out []string
	if base.NumCPU != 0 && cur.NumCPU != base.NumCPU {
		out = append(out, fmt.Sprintf("num_cpu %d vs baseline %d", cur.NumCPU, base.NumCPU))
	}
	if base.GoVersion != "" && cur.GoVersion != base.GoVersion {
		out = append(out, fmt.Sprintf("go_version %s vs baseline %s", cur.GoVersion, base.GoVersion))
	}
	return out
}

// gate returns one failure message per benchmark whose throughput
// dropped or whose allocs/op grew more than the tolerated fraction vs
// the baseline. Only benchmarks present in both reports are compared.
// Allocs/op is the precise check: at a fixed op count the workload is
// deterministic, so alloc growth is a real code change, never noise.
// For the wall-clock check, drift is the calibration ratio
// current/baseline ns/op of the fixed workload (>1 = this run's
// machine is slower): each measured throughput is multiplied by it
// before comparing, so uniform host slowdowns cancel.
func gate(cur, base report, tolerance, allocTolerance, drift float64) []string {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		b, ok := base.Benchmarks[name]
		if !ok || b.OpsPerSec <= 0 {
			continue
		}
		c := cur.Benchmarks[name]
		if b.AllocsPerOp > 0 && float64(c.AllocsPerOp) > float64(b.AllocsPerOp)*(1+allocTolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op vs baseline %d (+%.0f%%, tolerance %.0f%%)",
				name, c.AllocsPerOp, b.AllocsPerOp,
				(float64(c.AllocsPerOp)/float64(b.AllocsPerOp)-1)*100, allocTolerance*100))
		}
		adj := c.OpsPerSec * drift
		if adj < b.OpsPerSec*(1-tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ops/s (%.1f speed-normalized) vs baseline %.1f ops/s (-%.0f%%, tolerance %.0f%%)",
				name, c.OpsPerSec, adj, b.OpsPerSec,
				(1-adj/b.OpsPerSec)*100, tolerance*100))
		}
	}
	return failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
