// Command bench is the benchmark-regression harness: it runs the
// shared benchmark bodies (internal/benchmarks), writes a BENCH_<n>.json
// perf-trajectory file (ns/op, bytes/op, allocs/op, tests per second),
// and gates against the previous file — a throughput drop beyond the
// tolerance fails the run, making every PR's speedup or regression
// visible.
//
// Usage:
//
//	go run ./cmd/bench                 # full suite, writes BENCH_<n+1>.json
//	go run ./cmd/bench -short          # fast subset (CI gate)
//	go run ./cmd/bench -o /tmp/b.json  # explicit output path
//	go run ./cmd/bench -write=false    # gate only, write nothing
//
// The gate compares only benchmarks present in both the new run and the
// baseline, so a -short run gates cleanly against a committed full run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/benchmarks"
)

type benchStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// OpsPerSec is 1e9/ns_per_op — for ThroughputSingleThreaded this is
	// the paper's fused tests per second.
	OpsPerSec float64 `json:"ops_per_sec"`
}

type report struct {
	Timestamp  string                `json:"timestamp"`
	GoVersion  string                `json:"go_version"`
	NumCPU     int                   `json:"num_cpu"`
	Mode       string                `json:"mode"`
	Benchmarks map[string]benchStats `json:"benchmarks"`
	// InstrumentationOverhead is the fractional throughput cost of armed
	// telemetry counters: 1 − instrumented/plain ops/s, measured within
	// this run (negative values are benchmark noise).
	InstrumentationOverhead *float64 `json:"instrumentation_overhead,omitempty"`
}

var benchFilePat = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

func main() {
	short := flag.Bool("short", false, "run only the fast benchmarks with a reduced benchtime (CI mode)")
	dir := flag.String("dir", ".", "directory holding BENCH_<n>.json files (baseline lookup and default output)")
	out := flag.String("o", "", "explicit output path (default: next BENCH_<n>.json in -dir)")
	write := flag.Bool("write", true, "write the result file (false: gate only)")
	tolerance := flag.Float64("tolerance", 0.25, "max allowed fractional ops/sec regression vs baseline")
	overheadTol := flag.Float64("overhead-tolerance", 0.03, "max allowed fractional telemetry instrumentation overhead (plain vs instrumented throughput)")
	benchtime := flag.String("benchtime", "", "benchtime per benchmark (default 1s, or 300ms with -short)")
	flag.Parse()

	testing.Init()
	bt := *benchtime
	if bt == "" {
		bt = "1s"
		if *short {
			bt = "300ms"
		}
	}
	if err := flag.Lookup("test.benchtime").Value.Set(bt); err != nil {
		fatal(err)
	}

	mode := "full"
	if *short {
		mode = "short"
	}
	rep := report{
		//golint:allow wall-clock — the benchmark report is stamped with real time by design; nothing downstream branches on it
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Mode:       mode,
		Benchmarks: map[string]benchStats{},
	}

	for _, e := range benchmarks.All {
		if *short && !e.Fast {
			fmt.Printf("%-28s skipped (-short)\n", e.Name)
			continue
		}
		// Collect garbage left by the previous benchmark (dead interned
		// terms in particular) so measurements don't bleed into each
		// other.
		runtime.GC()
		res := testing.Benchmark(e.Fn)
		if res.N == 0 {
			fatal(fmt.Errorf("benchmark %s did not run", e.Name))
		}
		ns := float64(res.T.Nanoseconds()) / float64(res.N)
		st := benchStats{
			NsPerOp:     ns,
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			OpsPerSec:   1e9 / ns,
		}
		rep.Benchmarks[e.Name] = st
		fmt.Printf("%-28s %12.0f ns/op %10d allocs/op %12.1f ops/s\n",
			e.Name, st.NsPerOp, st.AllocsPerOp, st.OpsPerSec)
	}

	overhead := measureOverhead(*short)
	rep.InstrumentationOverhead = &overhead
	overheadFail := ""
	fmt.Printf("instrumentation overhead: %.2f%% (tolerance %.0f%%)\n",
		overhead*100, *overheadTol*100)
	if overhead > *overheadTol {
		overheadFail = fmt.Sprintf(
			"telemetry instrumentation overhead %.2f%% exceeds %.0f%%",
			overhead*100, *overheadTol*100)
	}

	baseline, baseName, err := latestBaseline(*dir)
	if err != nil {
		fatal(err)
	}

	if *write {
		path := *out
		if path == "" {
			path = filepath.Join(*dir, nextBenchName(*dir))
		}
		buf, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	var failures []string
	if overheadFail != "" {
		failures = append(failures, overheadFail)
	}
	if baseline == nil {
		fmt.Println("no baseline BENCH_<n>.json: baseline gate skipped")
	} else {
		fmt.Printf("gating against %s (tolerance %.0f%%)\n", baseName, *tolerance*100)
		failures = append(failures, gate(rep, *baseline, *tolerance)...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "REGRESSION:", f)
		}
		os.Exit(1)
	}
	fmt.Println("bench gate passed")
}

// measureOverhead estimates the throughput cost of armed telemetry
// counters as 1 − plain/instrumented time per op. Both benchmarks run
// at the same fixed op count so they execute the identical workload
// sequence (the main loop's adaptive iteration counts would hand each
// a different slice of the deterministic stream and drown the
// few-percent delta in mix differences). The pair is interleaved over
// several rounds and the minimum overhead is kept: ambient machine
// noise only ever inflates a round, while a real regression shows up
// in every one.
func measureOverhead(short bool) float64 {
	rounds, ops := 5, "600x"
	if short {
		rounds, ops = 3, "300x"
	}
	if err := flag.Lookup("test.benchtime").Value.Set(ops); err != nil {
		fatal(err)
	}
	run := func(fn func(*testing.B)) float64 {
		runtime.GC()
		res := testing.Benchmark(fn)
		if res.N == 0 {
			fatal(fmt.Errorf("overhead benchmark did not run"))
		}
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	best := math.Inf(1)
	for r := 0; r < rounds; r++ {
		plain := run(benchmarks.ThroughputSingleThreaded)
		instr := run(benchmarks.ThroughputInstrumented)
		if overhead := 1 - plain/instr; overhead < best {
			best = overhead
		}
	}
	return best
}

// latestBaseline loads the highest-numbered BENCH_<n>.json in dir.
func latestBaseline(dir string) (*report, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	best, bestName := -1, ""
	for _, e := range entries {
		m := benchFilePat.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err == nil && n > best {
			best, bestName = n, e.Name()
		}
	}
	if best < 0 {
		return nil, "", nil
	}
	buf, err := os.ReadFile(filepath.Join(dir, bestName))
	if err != nil {
		return nil, "", err
	}
	var rep report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, "", fmt.Errorf("%s: %w", bestName, err)
	}
	return &rep, bestName, nil
}

func nextBenchName(dir string) string {
	entries, _ := os.ReadDir(dir)
	next := 1
	for _, e := range entries {
		if m := benchFilePat.FindStringSubmatch(e.Name()); m != nil {
			if n, err := strconv.Atoi(m[1]); err == nil && n >= next {
				next = n + 1
			}
		}
	}
	return fmt.Sprintf("BENCH_%d.json", next)
}

// gate returns one failure message per benchmark whose throughput
// dropped more than the tolerated fraction below the baseline. Only
// benchmarks present in both reports are compared.
func gate(cur, base report, tolerance float64) []string {
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	var failures []string
	for _, name := range names {
		b, ok := base.Benchmarks[name]
		if !ok || b.OpsPerSec <= 0 {
			continue
		}
		c := cur.Benchmarks[name]
		if c.OpsPerSec < b.OpsPerSec*(1-tolerance) {
			failures = append(failures, fmt.Sprintf(
				"%s: %.1f ops/s vs baseline %.1f ops/s (-%.0f%%, tolerance %.0f%%)",
				name, c.OpsPerSec, b.OpsPerSec,
				(1-c.OpsPerSec/b.OpsPerSec)*100, tolerance*100))
		}
	}
	return failures
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
