// Command yylint runs the internal/analysis static verification passes
// over SMT-LIB files and reports diagnostics. It is the standalone
// front end to the same passes that gate fusion in internal/core,
// usable on generator output, reduced bug reports, or hand-written
// scripts.
//
// Usage:
//
//	yylint [-fail-on error|warning|info] [-passes p1,p2,...] file.smt2...
//
// The exit status is 1 when any file yields a diagnostic at or above
// the -fail-on severity, 2 on usage or parse errors, 0 otherwise.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/smtlib"
)

func main() {
	failOn := flag.String("fail-on", "warning", "minimum severity that causes a nonzero exit (error, warning, or info)")
	passNames := flag.String("passes", "", "comma-separated pass names to run (default: all registered passes)")
	list := flag.Bool("list", false, "list registered passes and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(analysis.Passes()))
		for _, p := range analysis.Passes() {
			names = append(names, p.Name())
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	threshold, ok := analysis.SeverityByName(*failOn)
	if !ok {
		fmt.Fprintf(os.Stderr, "yylint: unknown severity %q (want error, warning, or info)\n", *failOn)
		os.Exit(2)
	}

	passes := analysis.Passes()
	if *passNames != "" {
		passes = passes[:0:0]
		for _, name := range strings.Split(*passNames, ",") {
			name = strings.TrimSpace(name)
			p, ok := analysis.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "yylint: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: yylint [-fail-on S] [-passes p1,p2] file.smt2...")
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yylint:", err)
			os.Exit(2)
		}
		script, err := smtlib.ParseScript(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "yylint: %s: parse error: %v\n", path, err)
			os.Exit(2)
		}
		diags := analysis.AnalyzeScript(script, nil, passes...)
		for _, d := range diags {
			fmt.Printf("%s: %s\n", path, d)
			if d.Severity >= threshold {
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
