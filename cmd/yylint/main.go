// Command yylint is the repository's lint front end. It has two modes:
//
// SMT-LIB mode (default) runs the internal/analysis static verification
// passes — the same passes that gate fusion in internal/core — over
// script files:
//
//	yylint [-json] [-fail-on error|warning|info] [-passes p1,p2,...] file.smt2...
//
// Go mode (-go) runs the typed, call-graph-aware determinism and
// fuel-completeness linter (internal/analysis/golint) over a module
// root:
//
//	yylint -go [-json] [module root]
//
// With -json, diagnostics are emitted as a JSON array with the stable
// schema {"pass", "severity", "path", "message"}; path carries the
// position anchor ("file.smt2:assert[0].arg[1]", "internal/x/y.go:42").
// In both modes and both formats diagnostics are sorted by (path,
// position, pass, message) and exact duplicates are dropped.
//
// Exit status:
//
//	0  no diagnostic at or above the -fail-on severity
//	1  at least one diagnostic at or above the -fail-on severity
//	2  usage, read, parse, or type-check errors
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/golint"
	"repro/internal/smtlib"
)

// record is one diagnostic in the CLI's unified, mode-independent form.
// Pass/Severity/Path/Message is the documented JSON schema; the
// unexported fields order records by (file, position, pass, message).
type record struct {
	Pass     string `json:"pass"`
	Severity string `json:"severity"`
	Path     string `json:"path"`
	Message  string `json:"message"`

	file string
	line int    // Go findings: 1-based line
	term string // SMT findings: term path within the script
	sev  analysis.Severity
}

func main() {
	goMode := flag.Bool("go", false, "lint Go sources under a module root instead of SMT-LIB files")
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	failOn := flag.String("fail-on", "warning", "minimum severity that causes exit status 1 (error, warning, or info)")
	passNames := flag.String("passes", "", "comma-separated SMT-LIB pass names to run (default: all registered passes)")
	list := flag.Bool("list", false, "list registered SMT-LIB passes and exit")
	flag.Parse()

	if *list {
		names := make([]string, 0, len(analysis.Passes()))
		for _, p := range analysis.Passes() {
			names = append(names, p.Name())
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}

	threshold, ok := analysis.SeverityByName(*failOn)
	if !ok {
		fmt.Fprintf(os.Stderr, "yylint: unknown severity %q (want error, warning, or info)\n", *failOn)
		os.Exit(2)
	}

	var records []record
	if *goMode {
		records = lintGo()
	} else {
		records = lintScripts(*passNames)
	}
	records = sortDedup(records)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if records == nil {
			records = []record{}
		}
		if err := enc.Encode(records); err != nil {
			fmt.Fprintln(os.Stderr, "yylint:", err)
			os.Exit(2)
		}
	} else {
		for _, r := range records {
			fmt.Printf("%s: [%s] %s: %s\n", r.Path, r.Severity, r.Pass, r.Message)
		}
	}

	for _, r := range records {
		if r.sev >= threshold {
			os.Exit(1)
		}
	}
}

// lintGo runs the Go linter over the module root given as the sole
// positional argument (default ".").
func lintGo() []record {
	root := "."
	switch flag.NArg() {
	case 0:
	case 1:
		root = flag.Arg(0)
	default:
		fmt.Fprintln(os.Stderr, "usage: yylint -go [-json] [module root]")
		os.Exit(2)
	}
	findings, err := golint.LintDir(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "yylint:", err)
		os.Exit(2)
	}
	out := make([]record, 0, len(findings))
	for _, f := range findings {
		out = append(out, record{
			Pass:     f.Rule,
			Severity: analysis.SeverityWarning.String(),
			Path:     fmt.Sprintf("%s:%d", f.File, f.Line),
			Message:  f.Message,
			file:     f.File,
			line:     f.Line,
			sev:      analysis.SeverityWarning,
		})
	}
	return out
}

// lintScripts runs the SMT-LIB analysis passes over the positional file
// arguments.
func lintScripts(passNames string) []record {
	passes := analysis.Passes()
	if passNames != "" {
		passes = passes[:0:0]
		for _, name := range strings.Split(passNames, ",") {
			name = strings.TrimSpace(name)
			p, ok := analysis.Lookup(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "yylint: unknown pass %q (try -list)\n", name)
				os.Exit(2)
			}
			passes = append(passes, p)
		}
	}
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: yylint [-json] [-fail-on S] [-passes p1,p2] file.smt2...")
		os.Exit(2)
	}
	var out []record
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "yylint:", err)
			os.Exit(2)
		}
		script, err := smtlib.ParseScript(string(data))
		if err != nil {
			fmt.Fprintf(os.Stderr, "yylint: %s: parse error: %v\n", path, err)
			os.Exit(2)
		}
		for _, d := range analysis.AnalyzeScript(script, nil, passes...) {
			anchor := path
			if d.Path != "" {
				anchor = path + ":" + d.Path
			}
			out = append(out, record{
				Pass:     d.Pass,
				Severity: d.Severity.String(),
				Path:     anchor,
				Message:  d.Message,
				file:     path,
				term:     d.Path,
				sev:      d.Severity,
			})
		}
	}
	return out
}

// sortDedup orders records by (path, position, pass, message) and drops
// exact duplicates, so output is byte-stable across runs and pass
// registration order.
func sortDedup(records []record) []record {
	sort.Slice(records, func(i, j int) bool {
		a, b := records[i], records[j]
		if a.file != b.file {
			return a.file < b.file
		}
		if a.line != b.line {
			return a.line < b.line
		}
		if a.term != b.term {
			return a.term < b.term
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Message < b.Message
	})
	out := records[:0]
	for i, r := range records {
		if i > 0 {
			p := records[i-1]
			if p.Pass == r.Pass && p.Severity == r.Severity && p.Path == r.Path && p.Message == r.Message {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}
