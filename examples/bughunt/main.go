// Bughunt: a miniature version of the paper's four-month campaign.
// Runs YinYang against both simulated solvers under test, prints the
// triaged findings, and shows a reduced bug-triggering formula for the
// first soundness bug — the Figure 13 experience end to end.
package main

import (
	"fmt"

	yinyang "repro"
	"repro/internal/bugdb"
	"repro/internal/reduce"
	"repro/internal/smtlib"
)

func main() {
	for _, sut := range []yinyang.SUT{yinyang.Z3Sim, yinyang.CVC4Sim} {
		fmt.Printf("=== campaign against %s (trunk) ===\n", sut)
		res, err := yinyang.RunCampaign(yinyang.Campaign{
			SUT:        sut,
			Iterations: 120,
			SeedPool:   12,
			Seed:       2020,
			Threads:    4,
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("tests: %d   bugs: %d   duplicates: %d   unknowns: %d\n",
			res.Tests, len(res.Bugs), res.Duplicates, res.Unknowns)
		for _, b := range res.Bugs {
			entry, _ := bugdb.Find(b.Defect)
			fmt.Printf("  [%-11s] %-32s logic=%-10s  %s\n", b.Kind, b.Defect, b.Logic, entry.Description)
		}

		// Reduce the first soundness finding, like the paper's bug
		// reports do before filing.
		for _, b := range res.Bugs {
			if b.Kind != bugdb.Soundness {
				continue
			}
			fmt.Printf("\n--- reduced reproducer for %s (observed %v, oracle %v) ---\n",
				b.Defect, b.Observed, b.Oracle)
			fmt.Print(reduceBug(sut, b))
			break
		}
		fmt.Println()
	}
}

func reduceBug(sut yinyang.SUT, b yinyang.Bug) string {
	s := bugdb.NewTrunkSolver(sut, nil)
	ref := yinyang.NewReferenceSolver()
	// A shrink stays interesting only while the wrongness is preserved:
	// the buggy solver keeps its answer with the defect firing, and the
	// reference solver decides the opposite.
	interesting := func(c *smtlib.Script) bool {
		run := yinyang.Solve(s, c)
		if run.Crashed || run.Result != b.Observed {
			return false
		}
		fired := false
		for _, d := range run.DefectsFired {
			if d == b.Defect {
				fired = true
			}
		}
		if !fired {
			return false
		}
		refRun := yinyang.Solve(ref, c)
		return refRun.Result != b.Observed && refRun.Result.String() != "unknown"
	}
	if !interesting(b.Script) {
		return smtlib.Print(b.Script)
	}
	reduced := reduce.Reduce(b.Script, interesting, reduce.Options{MaxChecks: 300})
	return smtlib.Print(reduced)
}
