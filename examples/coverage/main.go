// Coverage: a miniature of the paper's RQ3/RQ4 experiment. Runs a seed
// corpus through an instrumented solver under test, then ConcatFuzz,
// then YinYang fusion on the same seeds, and prints the probe-coverage
// growth (line/function/branch) after each arm.
package main

import (
	"fmt"
	"math/rand"

	yinyang "repro"
	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/gen"
	"repro/internal/harness"
)

func main() {
	const (
		nSeeds = 15
		nFused = 30
	)
	logic := gen.QFNRA

	tracker := coverage.NewTracker()
	sut, err := bugdb.NewSolver(bugdb.Z3Sim, "trunk", tracker)
	if err != nil {
		panic(err)
	}
	g, err := yinyang.NewGenerator(yinyang.Logic(logic), 2020)
	if err != nil {
		panic(err)
	}

	report := func(stage string) {
		rep := tracker.Report()
		fmt.Printf("%-28s line %5.1f%%   function %5.1f%%   branch %5.1f%%\n",
			stage,
			rep.Lines().Percent(), rep.Functions().Percent(), rep.Branches().Percent())
	}

	// Arm 1: the seed corpus alone (the paper's "Benchmark" row).
	var seeds []*core.Seed
	for i := 0; i < nSeeds; i++ {
		seeds = append(seeds, g.Sat(), g.Unsat())
	}
	for _, s := range seeds {
		harness.RunSolver(sut, s.Script)
	}
	report("after seed corpus:")

	// Arm 2: ConcatFuzz on random pairs (no variable fusion).
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < nFused; i++ {
		s1, s2 := pick(seeds, rng), pick(seeds, rng)
		if s1.Status != s2.Status {
			continue
		}
		if fused, err := yinyang.Concat(s1, s2, rng); err == nil {
			harness.RunSolver(sut, fused.Script)
		}
	}
	report("after ConcatFuzz:")

	// Arm 3: YinYang fusion — the inversion terms drive the solver into
	// rewriter rules and theory paths the first two arms never touch.
	for i := 0; i < nFused; i++ {
		s1, s2 := pick(seeds, rng), pick(seeds, rng)
		if s1.Status != s2.Status {
			continue
		}
		if fused, err := yinyang.Fuse(s1, s2, rng); err == nil {
			harness.RunSolver(sut, fused.Script)
		}
	}
	report("after YinYang fusion:")
	fmt.Printf("\n(probe universe: %d instrumentation points; see internal/coverage)\n",
		coverage.NumProbes())
}

func pick(seeds []*core.Seed, rng *rand.Rand) *core.Seed {
	return seeds[rng.Intn(len(seeds))]
}
