// Quickstart: generate two satisfiable seeds, fuse them with Semantic
// Fusion, and check that the solver's answer matches the oracle that
// fusion guarantees by construction.
package main

import (
	"fmt"
	"math/rand"

	yinyang "repro"
)

func main() {
	rng := rand.New(rand.NewSource(2020))

	// 1. Seeds of known satisfiability (with witness models).
	g, err := yinyang.NewGenerator(yinyang.QF_LIA, 7)
	if err != nil {
		panic(err)
	}
	phi1, phi2 := g.Sat(), g.Sat()
	fmt.Println("--- seed φ1 (sat) ---")
	fmt.Print(yinyang.Print(phi1.Script))
	fmt.Println("--- seed φ2 (sat) ---")
	fmt.Print(yinyang.Print(phi2.Script))

	// 2. Semantic Fusion: the fused formula is satisfiable by
	// construction (Proposition 1 of the paper).
	fused, err := yinyang.Fuse(phi1, phi2, rng)
	if err != nil {
		panic(err)
	}
	fmt.Printf("--- fused (oracle: %v, mode: %v) ---\n", fused.Oracle, fused.Mode)
	fmt.Print(yinyang.Print(fused.Script))
	for _, t := range fused.Triplets {
		fmt.Printf("; fusion triplet: %s fuses (%s, %s) via %s\n", t.Z, t.X, t.Y, t.Function)
	}

	// 3. Solve and compare with the oracle.
	ref := yinyang.NewReferenceSolver()
	out := yinyang.Solve(ref, fused.Script)
	fmt.Printf("reference solver: %v (oracle %v)\n", out.Result, fused.Oracle)

	// 4. The same formula against a buggy solver under test may reveal
	// a soundness bug.
	sut, err := yinyang.NewSUT(yinyang.Z3Sim, "trunk")
	if err != nil {
		panic(err)
	}
	res := yinyang.Solve(sut, fused.Script)
	fmt.Printf("z3sim (trunk):    %v", res.Result)
	if res.Crashed {
		fmt.Printf(" CRASH: %s", res.CrashMsg)
	}
	fmt.Println()
}
