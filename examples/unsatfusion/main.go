// UNSAT fusion walkthrough on the paper's Figure 4 formulas: φ3 and φ4
// (both unsatisfiable) are disjoined, variables are fused with
// z = x·y, and fusion constraints are added — the Figure 5 shape that
// triggered a Z3 soundness bug. The z3sim solver under test carries the
// analogous unguarded-division-rewrite defect.
package main

import (
	"fmt"
	"math/rand"

	yinyang "repro"
	"repro/internal/core"
)

const phi3Src = `
(declare-fun x () Real)
(assert (not (= (+ (+ 1.0 x) 6.0) (+ 7.0 x))))
`

const phi4Src = `
(declare-fun y () Real)
(declare-fun w () Real)
(declare-fun v () Real)
(assert (and (< y v) (>= w v) (< (/ w v) 0) (> y 0)))
`

func main() {
	s3, err := yinyang.Parse(phi3Src)
	if err != nil {
		panic(err)
	}
	s4, err := yinyang.Parse(phi4Src)
	if err != nil {
		panic(err)
	}
	phi3 := &core.Seed{Script: s3, Status: core.StatusUnsat}
	phi4 := &core.Seed{Script: s4, Status: core.StatusUnsat}

	// Restrict the table to the paper's exact fusion function z = x·y
	// (Figure 6 row 3) so the walkthrough matches Figure 5.
	var mulOnly []core.FusionFn
	for _, fn := range core.DefaultTable {
		if fn.Name == "real-mul" {
			mulOnly = append(mulOnly, fn)
		}
	}
	rng := rand.New(rand.NewSource(1))
	fused, err := yinyang.FuseWith(phi3, phi4, rng, core.Options{
		Table:       mulOnly,
		MaxPairs:    1,
		ReplaceProb: 0.5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("--- fused formula (oracle %v, mode %v) ---\n", fused.Oracle, fused.Mode)
	fmt.Print(yinyang.Print(fused.Script))

	ref := yinyang.NewReferenceSolver()
	fmt.Printf("reference: %v\n", yinyang.Solve(ref, fused.Script).Result)

	sut, _ := yinyang.NewSUT(yinyang.Z3Sim, "trunk")
	res := yinyang.Solve(sut, fused.Script)
	fmt.Printf("z3sim:     %v", res.Result)
	if fmt.Sprint(res.Result) == "sat" {
		fmt.Printf("   <-- SOUNDNESS BUG (formula is unsat by construction; defects fired: %v)", res.DefectsFired)
	}
	fmt.Println()
}
