// SAT fusion walkthrough on the paper's Figure 2 formulas: φ1 and φ2
// (both satisfiable) are fused into the Figure 3 shape, which once
// triggered a CVC4 soundness bug. The cvc4sim solver under test carries
// the analogous defect class.
package main

import (
	"fmt"
	"math/rand"

	yinyang "repro"
	"repro/internal/core"
	"repro/internal/eval"
)

const phi1Src = `
(declare-fun x () Int)
(declare-fun w () Bool)
(assert (= x (- 1)))
(assert (= w (= x (- 1))))
(assert w)
`

const phi2Src = `
(declare-fun y () Int)
(declare-fun v () Bool)
(assert (= v (not (= y (- 1)))))
(assert (ite v false (= y (- 1))))
`

func main() {
	s1, err := yinyang.Parse(phi1Src)
	if err != nil {
		panic(err)
	}
	s2, err := yinyang.Parse(phi2Src)
	if err != nil {
		panic(err)
	}
	// Both formulas are satisfiable; their witnesses come from the
	// paper's discussion (x = −1, w = true; y = −1, v = false).
	phi1 := &core.Seed{Script: s1, Status: core.StatusSat,
		Witness: eval.Model{"x": eval.Int(-1), "w": eval.BoolV(true)}}
	phi2 := &core.Seed{Script: s2, Status: core.StatusSat,
		Witness: eval.Model{"y": eval.Int(-1), "v": eval.BoolV(false)}}

	// Multiplicative fusion like the paper's example: z = x·y with
	// inversions z div y and z div x.
	rng := rand.New(rand.NewSource(4))
	fused, err := yinyang.FuseWith(phi1, phi2, rng, core.Options{
		Table:       core.MultiplicativeTable,
		MaxPairs:    1,
		ReplaceProb: 0.6,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("--- fused formula (oracle %v) ---\n", fused.Oracle)
	fmt.Print(yinyang.Print(fused.Script))

	ref := yinyang.NewReferenceSolver()
	fmt.Printf("reference: %v\n", yinyang.Solve(ref, fused.Script).Result)

	sut, _ := yinyang.NewSUT(yinyang.CVC4Sim, "trunk")
	res := yinyang.Solve(sut, fused.Script)
	fmt.Printf("cvc4sim:   %v", res.Result)
	if fmt.Sprint(res.Result) != fmt.Sprint(fused.Oracle) && !res.Crashed && fmt.Sprint(res.Result) != "unknown" {
		fmt.Printf("   <-- SOUNDNESS BUG (oracle is %v; defects fired: %v)", fused.Oracle, res.DefectsFired)
	}
	fmt.Println()
}
