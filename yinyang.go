// Package yinyang is the public façade of this repository: a Go
// implementation of Semantic Fusion ("Validating SMT Solvers via
// Semantic Fusion", PLDI 2020) together with everything it needs to
// run end to end — an SMT-LIB front end, a reference SMT solver for the
// arithmetic and string logics, seed-formula generators with
// known-by-construction satisfiability, two simulated solvers under
// test with catalogued injected defects, a formula reducer, and the
// fuzzing harness that reproduces the paper's evaluation.
//
// Quick start:
//
//	seedGen, _ := yinyang.NewGenerator(yinyang.QF_S, 1)
//	phi1, phi2 := seedGen.Sat(), seedGen.Sat()
//	fused, _ := yinyang.Fuse(phi1, phi2, rand.New(rand.NewSource(1)))
//	out := yinyang.NewReferenceSolver().Solve(fused.Script)
//	fmt.Println(out.Result, "expected", fused.Oracle)
//
// See examples/ for runnable programs and cmd/ for the CLI tools.
package yinyang

import (
	"math/rand"

	"repro/internal/bugdb"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/harness"
	"repro/internal/reduce"
	"repro/internal/smtlib"
	"repro/internal/solver"
)

// Re-exported core types. The façade keeps one name per concept; the
// internal packages carry the full API surface.
type (
	// Script is a parsed SMT-LIB script.
	Script = smtlib.Script
	// Seed is a formula with known satisfiability (and witness model
	// for sat seeds).
	Seed = core.Seed
	// Fused is the result of a fusion: script, oracle, triplets.
	Fused = core.Fused
	// FusionOptions tunes the fusion engine.
	FusionOptions = core.Options
	// Solver is an SMT solver instance (reference or under test).
	Solver = solver.Solver
	// Outcome is a solver result.
	Outcome = solver.Outcome
	// Generator produces seeds for one logic.
	Generator = gen.Generator
	// Logic names a seed family.
	Logic = gen.Logic
	// Campaign configures a fuzzing run.
	Campaign = harness.Campaign
	// CampaignResult is a fuzzing run's findings.
	CampaignResult = harness.Result
	// Bug is one deduplicated finding.
	Bug = harness.Bug
	// SUT names a simulated solver under test.
	SUT = bugdb.SUT
)

// Logics.
const (
	LIA        = gen.LIA
	LRA        = gen.LRA
	NRA        = gen.NRA
	QF_LIA     = gen.QFLIA
	QF_LRA     = gen.QFLRA
	QF_NRA     = gen.QFNRA
	QF_NIA     = gen.QFNIA
	QF_S       = gen.QFS
	QF_SLIA    = gen.QFSLIA
	StringFuzz = gen.StringFuzz
)

// Solvers under test.
const (
	Z3Sim   = bugdb.Z3Sim
	CVC4Sim = bugdb.CVC4Sim
)

// Statuses (fuzzing oracles).
const (
	StatusSat   = core.StatusSat
	StatusUnsat = core.StatusUnsat
)

// Parse parses SMT-LIB source into a script.
func Parse(src string) (*Script, error) { return smtlib.ParseScript(src) }

// Print renders a script back to SMT-LIB concrete syntax.
func Print(s *Script) string { return smtlib.Print(s) }

// NewGenerator returns a seed generator for the logic.
func NewGenerator(logic Logic, seed int64) (*Generator, error) { return gen.New(logic, seed) }

// Fuse fuses two seeds of equal (or mixed) status per the paper's
// Algorithm 2, with default options.
func Fuse(phi1, phi2 *Seed, rng *rand.Rand) (*Fused, error) {
	return core.Fuse(phi1, phi2, rng, core.Options{})
}

// FuseWith fuses with explicit options.
func FuseWith(phi1, phi2 *Seed, rng *rand.Rand, opts FusionOptions) (*Fused, error) {
	return core.Fuse(phi1, phi2, rng, opts)
}

// Concat is the ConcatFuzz baseline: concatenation without fusion.
func Concat(phi1, phi2 *Seed, rng *rand.Rand) (*Fused, error) {
	return core.Concat(phi1, phi2, rng)
}

// NewReferenceSolver returns the defect-free reference solver.
func NewReferenceSolver() *Solver { return solver.NewReference() }

// NewSUT returns a simulated solver under test at a release ("trunk"
// enables every catalogued defect).
func NewSUT(s SUT, release string) (*Solver, error) {
	return bugdb.NewSolver(s, release, nil)
}

// Solve runs a solver on a script with crash capture, classifying the
// result the way the harness does.
func Solve(s *Solver, sc *Script) harness.RunResult { return harness.RunSolver(s, sc) }

// RunCampaign executes a fuzzing campaign (the paper's Algorithm 1).
func RunCampaign(c Campaign) (*CampaignResult, error) { return harness.Run(c) }

// ReduceScript shrinks a script while the predicate stays true.
func ReduceScript(s *Script, interesting func(*Script) bool) *Script {
	return reduce.Reduce(s, interesting, reduce.Options{})
}
