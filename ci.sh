#!/usr/bin/env bash
# Tier-1 verification: formatting, vet, build, full test suite, and
# race-detector runs over the concurrency-bearing packages. CI and
# local pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel campaign + solver) =="
# -short scales campaign iteration counts down: the race detector
# needs the parallel shard/merge structure exercised, not volume.
go test -race -short -timeout 20m ./internal/harness/ ./internal/solver/...

echo "== go test -race (fault containment) =="
# The fault-injection suite full-length under the race detector: hang
# defects, synthetic panics, watchdog quarantine, artifact replay. The
# watchdog path spawns and abandons goroutines, so it gets the most
# scrutiny here.
go test -race -timeout 10m -run 'TestRunSolverInternalFault|TestHangDefect|TestSimplexHang|TestSyntheticPanic|TestFaultCampaign|TestArtifacts|TestWallTimeout' ./internal/harness/
go test -race -timeout 5m ./internal/fuel/ ./internal/watchdog/

echo "== go test -race (process backends) =="
# The process-boundary suite full-length under the race detector: the
# fakesolver fault matrix (hang ⇒ deadline kill + guaranteed reap,
# crash capture with exit status and stderr, garbled/truncated output,
# slow drip vs. deadline, transient flake healed by retry, circuit
# breaker), plus the campaign-level cross-check oracle, degraded mode,
# and backend reproducer bundles. The fakesolver fixture is built on
# the fly by the tests — no binaries are checked in.
go test -race -timeout 10m ./internal/backend/
go test -race -timeout 10m -run 'TestCampaignHermeticCrossCheck|TestCampaignProcessBackendHang|TestCampaignBackend' ./internal/harness/

echo "== go test -race (second oracles) =="
# Model-validation and mutation oracles full-length under the race
# detector, including the negative oracle: the clean reference solver
# must produce zero invalid-model reports over the generator corpus.
go test -race -timeout 10m -run 'TestModelValidationOracleFindsInjected|TestReferenceModelValidationClean|TestMutationCampaignFindsGuardCollapse' ./internal/harness/

echo "== go test -race (consensus oracle) =="
# The consensus-oracle suite full-length under the race detector (the
# seeded-dissenter findings live past iteration 60, so -short would
# scale them away): majority vote outvoting a seeded dissenter with
# deduplicated findings, determinism across thread counts, resume, and
# a 3-way shard merge, metamorphic variant pairs with a known-policy
# control arm, the tri-state contradiction predicates, the quorum
# knob, and the oracle counter invariants. The breaker verdict table
# and spool retention ride along from the same change.
go test -race -timeout 15m -run 'TestMajority|TestMetamorphic|TestUnknownOracle|TestContradiction|TestQuorum|TestConsensusValidation|TestOracleCounter' ./internal/harness/
go test -race -timeout 5m -run 'TestHealth' ./internal/backend/
go test -race -timeout 5m -run 'TestSpoolRetention' ./internal/service/

echo "== go test -race (campaign service) =="
# Checkpoint/resume and shard/merge determinism suites plus the HTTP
# control plane full-length under the race detector: kill-at-every-
# frontier resume, chained pause/resume, K-way shard merge with
# results, metrics, traces, and reproducer bundles byte-compared,
# fail-closed document corruption, concurrent API clients, spool
# reload, and goroutine-leak checks.
go test -race -timeout 15m -run 'TestCheckpoint|TestShard|TestMerge|FuzzCheckpointRoundTrip' ./internal/harness/
go test -race -timeout 10m ./internal/service/

echo "== go test -race (telemetry) =="
# The telemetry layer full-length under the race detector: per-worker
# trackers merged by the in-order classification stage, funnel totals
# against Result counts, and thread-count-invariant JSONL traces.
go test -race -timeout 10m -run 'TestFunnelMatchesResultCounts|TestTraceRoundTrip|TestThreadsClampNegative' ./internal/harness/
go test -race -timeout 5m ./internal/telemetry/

echo "== telemetry smoke =="
# End-to-end: a tiny campaign through the CLI must produce a Prometheus
# snapshot carrying the funnel sentinel metric.
tmpmetrics=$(mktemp)
go run ./cmd/yinyang -logics QF_LIA -iters 10 -pool 4 -seed 3 -threads 2 -metrics "$tmpmetrics" >/dev/null
grep -q '^yy_funnel_solved_total [1-9]' "$tmpmetrics" || {
    echo "telemetry smoke: yy_funnel_solved_total missing or zero in $tmpmetrics" >&2
    exit 1
}
rm -f "$tmpmetrics"

echo "== campaign service smoke =="
# End-to-end through the CLI: a campaign killed at a checkpoint and
# resumed with a different worker count, and the same campaign split
# into 3 shards (each with its own worker count) and merged, must both
# reproduce the uninterrupted run byte-for-byte — result fingerprint,
# Prometheus metrics, JSONL trace, and reproducer bundle tree.
tmpsvc=$(mktemp -d)
# A built binary, not `go run`: the pause leg's exit code 3 is part of
# the checked contract, and `go run` collapses child exit codes to 1.
go build -o "$tmpsvc/yy" ./cmd/yinyang
svcargs="-sut z3sim -logics QF_LIA,QF_S -iters 10 -pool 4 -seed 7 -backend cvc4sim"
"$tmpsvc/yy" $svcargs -threads 2 -artifacts "$tmpsvc/ref-art" \
    -metrics "$tmpsvc/ref.prom" -trace "$tmpsvc/ref.jsonl" -fingerprint "$tmpsvc/ref.fp" >/dev/null
set +e
"$tmpsvc/yy" $svcargs -threads 1 -checkpoint "$tmpsvc/cp.json" -stop-after 7 \
    -artifacts "$tmpsvc/cp-art" -metrics "$tmpsvc/cp.prom" -trace "$tmpsvc/cp.jsonl" >/dev/null
rc=$?
set -e
[ "$rc" -eq 3 ] || { echo "campaign smoke: pause leg exited $rc, want 3" >&2; exit 1; }
"$tmpsvc/yy" $svcargs -threads 3 -checkpoint "$tmpsvc/cp.json" \
    -artifacts "$tmpsvc/cp-art" -metrics "$tmpsvc/cp.prom" -trace "$tmpsvc/cp.jsonl" \
    -fingerprint "$tmpsvc/cp.fp" >/dev/null
cmp "$tmpsvc/ref.fp" "$tmpsvc/cp.fp"
cmp "$tmpsvc/ref.prom" "$tmpsvc/cp.prom"
cmp "$tmpsvc/ref.jsonl" "$tmpsvc/cp.jsonl"
diff -r "$tmpsvc/ref-art" "$tmpsvc/cp-art" >/dev/null
for s in 0 1 2; do
    "$tmpsvc/yy" $svcargs -threads $((s + 1)) -shard $s/3 \
        -artifacts "$tmpsvc/sh$s-art" -metrics "$tmpsvc/sh$s.prom" \
        -trace "$tmpsvc/sh$s.jsonl" -envelope "$tmpsvc/sh$s.json" >/dev/null
done
"$tmpsvc/yy" -merge -artifacts "$tmpsvc/merged-art" -metrics "$tmpsvc/merged.prom" \
    -trace "$tmpsvc/merged.jsonl" -fingerprint "$tmpsvc/merged.fp" \
    "$tmpsvc/sh0.json" "$tmpsvc/sh1.json" "$tmpsvc/sh2.json" >/dev/null
cmp "$tmpsvc/ref.fp" "$tmpsvc/merged.fp"
cmp "$tmpsvc/ref.prom" "$tmpsvc/merged.prom"
cmp "$tmpsvc/ref.jsonl" "$tmpsvc/merged.jsonl"
diff -r "$tmpsvc/ref-art" "$tmpsvc/merged-art" >/dev/null
rm -rf "$tmpsvc"

echo "== consensus oracle smoke =="
# End-to-end through the CLI: a wild-mode campaign (unknown ground
# truth) with two agreeing sim backends and a fakesolver that answers
# sat unconditionally. Under -oracle majority the dissenter is
# outvoted 3-1 on every unsat consensus and all of those collapse into
# exactly one deduplicated finding; under the default known-status
# policy the same run must stay silent — unknown-status tasks abstain
# rather than contradict.
tmporacle=$(mktemp -d)
go build -o "$tmporacle/yy" ./cmd/yinyang
go build -o "$tmporacle/fakesolver" ./internal/backend/fakesolver
oracleargs="-sut cvc4sim -release 1.5 -logics QF_NRA -mode wild -nomodelcheck \
    -iters 60 -pool 8 -seed 31 -backend cvc4sim@1.6 -backend cvc4sim@1.7"
"$tmporacle/yy" $oracleargs -oracle majority \
    -backend "dissent=$tmporacle/fakesolver -mode sat" > "$tmporacle/maj.txt"
found=$(grep -c 'backend-majority-disagreement.* dissent ' "$tmporacle/maj.txt" || true)
[ "$found" -eq 1 ] || {
    echo "consensus smoke: want exactly 1 deduplicated majority finding for the dissenter, got $found:" >&2
    cat "$tmporacle/maj.txt" >&2
    exit 1
}
"$tmporacle/yy" $oracleargs -oracle known \
    -backend "dissent=$tmporacle/fakesolver -mode sat" > "$tmporacle/known.txt"
if grep -q 'backend-majority-disagreement\|backend-disagreement' "$tmporacle/known.txt"; then
    echo "consensus smoke: known-status policy flagged an unknown-status task instead of abstaining:" >&2
    cat "$tmporacle/known.txt" >&2
    exit 1
fi
rm -rf "$tmporacle"

echo "== static analysis =="
# The typed, call-graph-aware Go linter must be clean over the whole
# module — every unbounded loop in solver scope charges fuel, no map
# iteration order reaches rendered output, and every allow directive
# carries a reason. Findings print before the non-zero exit.
go run ./cmd/yylint -go .
# SMT-LIB self-check: the analysis passes (including the abstract
# interpreter) over a freshly generated seed corpus across all logics.
# The pipeline's own output must be warning-free.
tmpseeds=$(mktemp -d)
go run ./cmd/genseeds -n 5 -seed 7 -out "$tmpseeds"
find "$tmpseeds" -name '*.smt2' -print0 | xargs -0 go run ./cmd/yylint
rm -rf "$tmpseeds"

echo "== fuzz smoke =="
# Bounded go-native fuzzing: each target gets a short budget on top of
# its committed seed corpus. Failures minimize into testdata/fuzz/ and
# become regression inputs.
go test -fuzz='^FuzzParsePrintRoundTrip$' -fuzztime=10s ./internal/smtlib/
go test -fuzz='^FuzzEvalTotal$' -fuzztime=10s ./internal/eval/
go test -fuzz='^FuzzAnalyze$' -fuzztime=10s ./internal/analysis/
# -run='^$' skips the harness's (slow) unit tests here; the race
# stages above already ran them.
go test -run='^$' -fuzz='^FuzzCheckpointRoundTrip$' -fuzztime=10s ./internal/harness/

echo "== bench gate =="
# Short-mode regression gate: runs the fast benchmarks at a fixed op
# count (identical workload every run) and compares against the latest
# committed BENCH_<n>.json. Allocs/op is the deterministic tripwire
# (>10% growth fails); throughput is speed-normalized via the
# calibration workload and gates at a tolerance wide enough for the
# shared host's residual phase noise. Gate-only: no file is written.
go run ./cmd/bench -short -write=false

echo "ci: all checks passed"
