#!/usr/bin/env bash
# Tier-1 verification: formatting, vet, build, full test suite, and
# race-detector runs over the concurrency-bearing packages. CI and
# local pre-merge checks run exactly this script.
set -euo pipefail
cd "$(dirname "$0")"

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (parallel campaign + solver) =="
# -short scales campaign iteration counts down: the race detector
# needs the parallel shard/merge structure exercised, not volume.
go test -race -short -timeout 20m ./internal/harness/ ./internal/solver/...

echo "== go test -race (fault containment) =="
# The fault-injection suite full-length under the race detector: hang
# defects, synthetic panics, watchdog quarantine, artifact replay. The
# watchdog path spawns and abandons goroutines, so it gets the most
# scrutiny here.
go test -race -timeout 10m -run 'TestRunSolverInternalFault|TestHangDefect|TestSimplexHang|TestSyntheticPanic|TestFaultCampaign|TestArtifacts|TestWallTimeout' ./internal/harness/
go test -race -timeout 5m ./internal/fuel/ ./internal/watchdog/

echo "== bench gate =="
# Short-mode regression gate: runs the fast benchmarks and compares
# tests/s against the latest committed BENCH_<n>.json; a drop beyond
# 25% on any benchmark fails CI. Gate-only: no file is written.
go run ./cmd/bench -short -write=false

echo "ci: all checks passed"
